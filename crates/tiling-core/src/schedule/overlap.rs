//! The overlapping (pipelined) schedule — the paper's contribution (§4).
//!
//! The linear schedule is modified so that, at each time step, a
//! processor computes a tile while *concurrently* sending the results of
//! the previous step and receiving the inputs of the next one. Tile
//! `j^S` executes at
//!
//! ```text
//! t(j^S) = 2·j_1^S + … + 2·j_{i−1}^S + 2·j_{i+1}^S + … + 2·j_n^S + j_i^S,
//! ```
//!
//! where `i` is the processor-mapping dimension: a dependence along `i`
//! (same processor, memory hand-off) advances one step, while a
//! cross-processor dependence advances two (one step in flight). This is
//! the optimal UET-UCT grid schedule of Andronikos et al. \[1\].
//!
//! Per-step cost (eq. 4): `max(A₁+A₂+A₃, B₁+B₂+B₃+B₄)` — the CPU lane
//! (post sends, compute, post receives) races the communication lane
//! (kernel copies plus wire time), and the longer one paces the pipeline.

use crate::dependence::DependenceSet;
use crate::machine::MachineParams;
use crate::mapping::{neighbor_messages, total_message_volume, ProcessorMapping};
use crate::space::IterationSpace;
use crate::tiling::Tiling;

/// How the communication lane's phases combine (Fig. 3 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OverlapMode {
    /// Fig. 3b / Fig. 4b: kernel copies and transmissions of all messages
    /// share one DMA/NIC lane — `B₁+B₂+B₃+B₄` is a straight sum.
    #[default]
    Serialized,
    /// Fig. 3c: send and receive directions overlap too (multi-channel
    /// DMA); the lane cost is `max(send side, receive side)`.
    DuplexDma,
}

/// The overlapping tile schedule.
#[derive(Clone, Debug)]
pub struct OverlapSchedule {
    mapping: ProcessorMapping,
}

impl OverlapSchedule {
    /// Build for a tiled space, mapping along its longest dimension.
    pub fn new(tiled_space: &IterationSpace) -> Self {
        OverlapSchedule {
            mapping: ProcessorMapping::by_longest_dimension(tiled_space),
        }
    }

    /// Build with an explicit mapping dimension.
    pub fn with_mapping(dims: usize, mapping_dim: usize) -> Self {
        OverlapSchedule {
            mapping: ProcessorMapping::along(dims, mapping_dim),
        }
    }

    /// The processor mapping.
    pub fn mapping(&self) -> &ProcessorMapping {
        &self.mapping
    }

    /// The schedule vector: coefficient 1 along the mapping dimension,
    /// 2 elsewhere.
    pub fn pi(&self) -> Vec<i64> {
        (0..self.mapping.dims())
            .map(|d| {
                if d == self.mapping.mapping_dim() {
                    1
                } else {
                    2
                }
            })
            .collect()
    }

    /// Execution step of a tile, normalized so the first tile runs at 0.
    pub fn time_of(&self, tile: &[i64], tiled_space: &IterationSpace) -> i64 {
        assert_eq!(tile.len(), self.mapping.dims(), "tile arity mismatch");
        let pi = self.pi();
        (0..tile.len())
            .map(|d| pi[d] * (tile[d] - tiled_space.lower()[d]))
            .sum()
    }

    /// Number of time hyperplanes:
    /// `P(g) = 2·Σ_{k≠i}(u_k − l_k) + (u_i − l_i) + 1`.
    pub fn schedule_length(&self, tiled_space: &IterationSpace) -> i64 {
        let pi = self.pi();
        let sum: i64 = (0..tiled_space.dims())
            .map(|d| pi[d] * (tiled_space.extent(d) - 1))
            .sum();
        sum + 1
    }

    /// Validity against a tile dependence set: a dependence advancing
    /// only along the mapping dimension needs `Δt ≥ 1` (memory hand-off
    /// on the same processor); any cross-processor dependence needs
    /// `Δt ≥ 2` (sent during one step, consumed after the next).
    pub fn is_valid_for(&self, tile_deps: &DependenceSet) -> bool {
        let pi = self.pi();
        tile_deps.iter().all(|d| {
            let dt = d.dot(&pi);
            let cross = self
                .mapping
                .processor_of(d.components())
                .iter()
                .any(|&x| x != 0);
            if cross {
                dt >= 2
            } else {
                dt >= 1
            }
        })
    }

    /// Full cost analysis per equations (4)/(5).
    pub fn analyze(
        &self,
        tiling: &Tiling,
        deps: &DependenceSet,
        space: &IterationSpace,
        machine: &MachineParams,
        mode: OverlapMode,
    ) -> OverlapReport {
        let tiled_space = tiling.tiled_space(space);
        let length = self.schedule_length(&tiled_space);
        let msgs = neighbor_messages(tiling, deps, &self.mapping);
        let v_comm = total_message_volume(&msgs);
        let g = tiling.volume();
        let b = f64::from(machine.bytes_per_elem);

        // CPU lane: A₁ (post all non-blocking sends) + A₂ (compute) +
        // A₃ (post all non-blocking receives). The paper assumes the
        // Irecv posting cost equals the Isend one (§5).
        let mut a1 = 0.0;
        let mut a3 = 0.0;
        for m in &msgs {
            let bytes = m.volume_points as f64 * b;
            a1 += machine.fill_mpi_buffer.eval(bytes);
            a3 += machine.fill_mpi_buffer.eval(bytes);
        }
        let a2 = machine.tile_compute_us(g);
        let cpu_lane = a1 + a2 + a3;

        // Communication lane: per message, a kernel copy on each side
        // (B₂, B₃) and the wire time on each side (B₁, B₄). In the
        // pipeline every node both sends and receives the same message
        // set, so the send side and receive side have equal cost.
        let mut send_side = 0.0;
        let mut recv_side = 0.0;
        for m in &msgs {
            let bytes = m.volume_points as f64 * b;
            send_side += machine.fill_kernel_buffer.eval(bytes) + machine.transmit_us(bytes);
            recv_side += machine.transmit_us(bytes) + machine.fill_kernel_buffer.eval(bytes);
        }
        let comm_lane = match mode {
            OverlapMode::Serialized => send_side + recv_side,
            OverlapMode::DuplexDma => send_side.max(recv_side),
        };

        let step = cpu_lane.max(comm_lane);
        OverlapReport {
            tiled_space,
            mapping_dim: self.mapping.mapping_dim(),
            schedule_length: length,
            g,
            v_comm_points: v_comm,
            neighbor_count: msgs.len(),
            cpu_lane_us: cpu_lane,
            comm_lane_us: comm_lane,
            a1_us: a1,
            a2_us: a2,
            a3_us: a3,
            step_us: step,
            total_us: length as f64 * step,
            mode,
        }
    }
}

/// Breakdown of the overlapping execution-time prediction (eq. 4/5).
#[derive(Clone, Debug)]
pub struct OverlapReport {
    /// The tiled space `J^S`.
    pub tiled_space: IterationSpace,
    /// Processor-mapping dimension `i`.
    pub mapping_dim: usize,
    /// Number of time hyperplanes `P(g)`.
    pub schedule_length: i64,
    /// Tile volume `g`.
    pub g: i64,
    /// Cross-processor communication volume per tile (points).
    pub v_comm_points: i64,
    /// Number of neighboring processors each tile talks to.
    pub neighbor_count: usize,
    /// CPU lane `A₁+A₂+A₃` (µs).
    pub cpu_lane_us: f64,
    /// Communication lane `B₁+B₂+B₃+B₄` (µs).
    pub comm_lane_us: f64,
    /// `A₁`: total Isend posting cost (µs).
    pub a1_us: f64,
    /// `A₂ = g·t_c` (µs).
    pub a2_us: f64,
    /// `A₃`: total Irecv posting cost (µs).
    pub a3_us: f64,
    /// Per-step cost `max(A-lane, B-lane)` (µs).
    pub step_us: f64,
    /// Total `T = P(g)·step` (µs).
    pub total_us: f64,
    /// Overlap mode used for the B lane.
    pub mode: OverlapMode,
}

impl OverlapReport {
    /// True iff the CPU lane paces the pipeline (case 1 of §4).
    pub fn is_cpu_bound(&self) -> bool {
        self.cpu_lane_us >= self.comm_lane_us
    }

    /// Total time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §4 Example 3: the 2-D loop of Example 1 under the overlapping
    /// schedule — `Π = (1,2)`, `P = 1198`, `T ≈ 0.24 s` vs 0.4 s.
    #[test]
    fn example_3_paper_numbers() {
        let machine = MachineParams::example_1();
        let tiling = Tiling::rectangular(&[10, 10]);
        let deps = DependenceSet::example_1();
        let space = IterationSpace::from_extents(&[10_000, 1_000]);
        let sched = OverlapSchedule::with_mapping(2, 0);
        assert_eq!(sched.pi(), vec![1, 2]);

        let ts = tiling.tiled_space(&space);
        // P = 999 + 2·99 + 1 = 1198.
        assert_eq!(sched.schedule_length(&ts), 1198);

        let r = sched.analyze(&tiling, &deps, &space, &machine, OverlapMode::DuplexDma);
        // CPU lane: A₁ = A₃ = ½·t_s = 50·t_c, A₂ = 100·t_c ⇒ 200·t_c.
        assert!((r.a1_us - 50.0).abs() < 1e-9);
        assert!((r.a3_us - 50.0).abs() < 1e-9);
        assert!((r.a2_us - 100.0).abs() < 1e-9);
        assert!((r.cpu_lane_us - 200.0).abs() < 1e-9);
        // B lane (duplex): per direction 50 (kernel) + 64 (wire) = 114.
        assert!((r.comm_lane_us - 114.0).abs() < 1e-9);
        assert!(r.is_cpu_bound());
        // T = 1198 × 200·t_c = 239 600 t_c ≈ 0.24 s.
        assert!((r.total_us - 239_600.0).abs() < 1e-6);
        assert!((r.total_secs() - 0.2396).abs() < 1e-4);
    }

    #[test]
    fn overlap_beats_nonoverlap_on_example() {
        use crate::schedule::nonoverlap::NonOverlapSchedule;
        let machine = MachineParams::example_1();
        let tiling = Tiling::rectangular(&[10, 10]);
        let deps = DependenceSet::example_1();
        let space = IterationSpace::from_extents(&[10_000, 1_000]);
        let no = NonOverlapSchedule::with_mapping(2, 0).analyze(&tiling, &deps, &space, &machine);
        let ov = OverlapSchedule::with_mapping(2, 0).analyze(
            &tiling,
            &deps,
            &space,
            &machine,
            OverlapMode::DuplexDma,
        );
        assert!(ov.total_us < no.total_us);
        // The paper reports 0.24 s vs 0.4 s — a ~40% improvement.
        let improvement = 1.0 - ov.total_us / no.total_us;
        assert!(improvement > 0.35 && improvement < 0.45, "{improvement}");
    }

    #[test]
    fn schedule_time_coefficients() {
        let ts = IterationSpace::from_extents(&[4, 4, 37]);
        let s = OverlapSchedule::with_mapping(3, 2);
        assert_eq!(s.pi(), vec![2, 2, 1]);
        assert_eq!(s.time_of(&[0, 0, 0], &ts), 0);
        assert_eq!(s.time_of(&[1, 0, 0], &ts), 2);
        assert_eq!(s.time_of(&[0, 0, 1], &ts), 1);
        assert_eq!(s.time_of(&[3, 3, 36], &ts), 2 * 3 + 2 * 3 + 36);
        assert_eq!(s.schedule_length(&ts), 2 * 3 + 2 * 3 + 36 + 1);
    }

    #[test]
    fn schedule_length_with_offset_space() {
        let ts = IterationSpace::new(vec![2, 5], vec![4, 9]);
        let s = OverlapSchedule::with_mapping(2, 1);
        // Extents 3 and 5; mapping along dim 1: P = 2·2 + 4 + 1 = 9.
        assert_eq!(s.schedule_length(&ts), 9);
        assert_eq!(s.time_of(&[2, 5], &ts), 0);
        assert_eq!(s.time_of(&[4, 9], &ts), 8);
    }

    #[test]
    fn validity_cross_processor_needs_two_steps() {
        let s = OverlapSchedule::with_mapping(2, 0);
        // Unit tile deps: e1 along mapping (Δt=1, same proc: ok),
        // e2 cross-processor (Δt=2: ok).
        assert!(s.is_valid_for(&DependenceSet::units(2)));
        // A hypothetical schedule mapping along dim 1 still works for
        // unit deps…
        assert!(OverlapSchedule::with_mapping(2, 1).is_valid_for(&DependenceSet::units(2)));
    }

    #[test]
    fn invalid_when_cross_processor_dep_advances_one() {
        // Construct an invalid case artificially: mapping along dim 0
        // but a dependence (1, 0) declared cross-processor can't happen
        // (its projection is zero). Instead check a diagonal (1,1):
        // Δt = 1·1 + 2·1 = 3 ≥ 2: valid. Negative mapping component:
        // d = (-1, 1): Δt = −1+2 = 1 but cross ⇒ invalid.
        let s = OverlapSchedule::with_mapping(2, 0);
        let d = DependenceSet::from_vectors(2, vec![vec![-1, 1]]);
        assert!(!s.is_valid_for(&d));
    }

    #[test]
    fn serialized_mode_doubles_duplex_lane() {
        let machine = MachineParams::example_1();
        let tiling = Tiling::rectangular(&[10, 10]);
        let deps = DependenceSet::example_1();
        let space = IterationSpace::from_extents(&[100, 100]);
        let s = OverlapSchedule::with_mapping(2, 0);
        let ser = s.analyze(&tiling, &deps, &space, &machine, OverlapMode::Serialized);
        let dup = s.analyze(&tiling, &deps, &space, &machine, OverlapMode::DuplexDma);
        assert!((ser.comm_lane_us - 2.0 * dup.comm_lane_us).abs() < 1e-9);
        assert!(ser.step_us >= dup.step_us);
    }

    #[test]
    fn free_communication_cpu_bound() {
        let machine = MachineParams::free_communication(1.0);
        let tiling = Tiling::rectangular(&[8, 8]);
        let deps = DependenceSet::units(2);
        let space = IterationSpace::from_extents(&[64, 64]);
        let s = OverlapSchedule::with_mapping(2, 0);
        let r = s.analyze(&tiling, &deps, &space, &machine, OverlapMode::Serialized);
        assert!(r.is_cpu_bound());
        assert_eq!(r.comm_lane_us, 0.0);
        assert!((r.step_us - 64.0).abs() < 1e-9);
    }

    #[test]
    fn paper_3d_experiment_i_theory() {
        // Fig. 12 column i: V = 444, g = 7104, T_fill = 0.627 ms,
        // theoretical t ≈ 0.24 s (the paper's arithmetic uses the
        // *non-overlap* plane count ≈ 43; our exact overlap P = 49 gives
        // ~0.27 s — same shape, documented in EXPERIMENTS.md).
        let machine = MachineParams::paper_cluster();
        let tiling = Tiling::rectangular(&[4, 4, 444]);
        let deps = DependenceSet::paper_3d();
        let space = IterationSpace::from_extents(&[16, 16, 16384]);
        let s = OverlapSchedule::with_mapping(3, 2);
        let r = s.analyze(&tiling, &deps, &space, &machine, OverlapMode::Serialized);
        assert_eq!(r.schedule_length, 2 * 3 + 2 * 3 + 36 + 1);
        assert_eq!(r.neighbor_count, 2);
        // A-lane: 4 posts ≈ 4×627 µs + 7104×0.441 µs ≈ 5.64 ms.
        assert!((r.cpu_lane_us - (4.0 * 627.0 + 7104.0 * 0.441)).abs() < 5.0);
        assert!(r.is_cpu_bound());
        // Total ≈ 49 × 5.64 ms ≈ 0.277 s: within 20% of the paper's 0.24.
        assert!(
            r.total_secs() > 0.2 && r.total_secs() < 0.32,
            "{}",
            r.total_secs()
        );
    }
}
