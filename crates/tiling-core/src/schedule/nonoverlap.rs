//! The non-overlapping (Hodzic–Shang) schedule (§3).
//!
//! Tiles are scheduled by `Π = [1 1 … 1]` over the tiled space; every
//! time step is a serialized *receive → compute → send* triplet, so the
//! total execution time is
//!
//! ```text
//! T = P(g) · (T_comp + T_comm),            (3)
//! T_comm = T_startup + T_transmit,
//! ```
//!
//! with one startup pair (`2·t_s`, a send plus a receive) per neighboring
//! processor and a transmission term `b · V_comm · t_t` for the data
//! crossing processor boundaries.

use crate::dependence::DependenceSet;
use crate::machine::MachineParams;
use crate::mapping::{neighbor_messages, total_message_volume, ProcessorMapping};
use crate::schedule::linear::LinearSchedule;
use crate::space::IterationSpace;
use crate::tiling::Tiling;

/// The non-overlapping tile schedule: `Π = [1 … 1]` plus a processor
/// mapping along the longest tiled dimension.
#[derive(Clone, Debug)]
pub struct NonOverlapSchedule {
    schedule: LinearSchedule,
    mapping: ProcessorMapping,
}

impl NonOverlapSchedule {
    /// Build the schedule for a tiled space, mapping along its longest
    /// dimension (the paper's choice).
    pub fn new(tiled_space: &IterationSpace) -> Self {
        NonOverlapSchedule {
            schedule: LinearSchedule::ones(tiled_space.dims()),
            mapping: ProcessorMapping::by_longest_dimension(tiled_space),
        }
    }

    /// Build with an explicit mapping dimension.
    pub fn with_mapping(dims: usize, mapping_dim: usize) -> Self {
        NonOverlapSchedule {
            schedule: LinearSchedule::ones(dims),
            mapping: ProcessorMapping::along(dims, mapping_dim),
        }
    }

    /// The linear schedule `Π = [1 … 1]`.
    pub fn schedule(&self) -> &LinearSchedule {
        &self.schedule
    }

    /// The processor mapping.
    pub fn mapping(&self) -> &ProcessorMapping {
        &self.mapping
    }

    /// Execution step of a tile (zero-based).
    pub fn time_of(&self, tile: &[i64], tiled_space: &IterationSpace) -> i64 {
        self.schedule
            .time_of(tile, tiled_space, &DependenceSet::units(tile.len()))
    }

    /// Number of time hyperplanes `P(g) = Σ_d (u_d − l_d) + 1`.
    pub fn schedule_length(&self, tiled_space: &IterationSpace) -> i64 {
        self.schedule
            .makespan(tiled_space, &DependenceSet::units(tiled_space.dims()))
    }

    /// Full cost analysis per equation (3).
    pub fn analyze(
        &self,
        tiling: &Tiling,
        deps: &DependenceSet,
        space: &IterationSpace,
        machine: &MachineParams,
    ) -> NonOverlapReport {
        let tiled_space = tiling.tiled_space(space);
        let length = self.schedule_length(&tiled_space);
        let msgs = neighbor_messages(tiling, deps, &self.mapping);
        let v_comm = total_message_volume(&msgs);
        let g = tiling.volume();
        let t_comp = machine.tile_compute_us(g);
        // One send + one receive startup per neighboring processor, both
        // byte-dependent (blocking operations walk the full user→kernel
        // copy path: `T_startup = T_fill_MPI + T_fill_kernel`, §4), plus
        // one wire transit per complete send-receive pair (§3 Example 1).
        let mut t_startup = 0.0;
        let mut t_transmit = 0.0;
        for m in &msgs {
            let bytes = m.volume_points as f64 * f64::from(machine.bytes_per_elem);
            t_startup += 2.0 * machine.startup_us(bytes);
            t_transmit += machine.transmit_us(bytes);
        }
        let step = t_comp + t_startup + t_transmit;
        NonOverlapReport {
            tiled_space,
            mapping_dim: self.mapping.mapping_dim(),
            schedule_length: length,
            g,
            v_comm_points: v_comm,
            neighbor_count: msgs.len(),
            t_comp_us: t_comp,
            t_startup_us: t_startup,
            t_transmit_us: t_transmit,
            step_us: step,
            total_us: length as f64 * step,
        }
    }
}

/// Breakdown of the non-overlapping execution-time prediction (eq. 3).
#[derive(Clone, Debug)]
pub struct NonOverlapReport {
    /// The tiled space `J^S`.
    pub tiled_space: IterationSpace,
    /// Processor-mapping dimension.
    pub mapping_dim: usize,
    /// Number of time hyperplanes `P(g)`.
    pub schedule_length: i64,
    /// Tile volume `g`.
    pub g: i64,
    /// Cross-processor communication volume per tile (points).
    pub v_comm_points: i64,
    /// Number of neighboring processors each tile talks to.
    pub neighbor_count: usize,
    /// `T_comp = g·t_c` (µs).
    pub t_comp_us: f64,
    /// `T_startup = 2·t_s` per neighbor (µs).
    pub t_startup_us: f64,
    /// `T_transmit = b·V_comm·t_t` (µs).
    pub t_transmit_us: f64,
    /// Per-step cost `T_comp + T_comm` (µs).
    pub step_us: f64,
    /// Total `T = P(g)·(T_comp + T_comm)` (µs).
    pub total_us: f64,
}

impl NonOverlapReport {
    /// `T_comm = T_startup + T_transmit` (µs).
    pub fn t_comm_us(&self) -> f64 {
        self.t_startup_us + self.t_transmit_us
    }

    /// Total time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_us * 1e-6
    }
}

/// Hodzic–Shang optimal tile size (expression (11) of \[4\], quoted in
/// Example 1): `g = c·t_s/t_c` with `c` the number of neighboring
/// processors.
pub fn optimal_g_hodzic_shang(machine: &MachineParams, neighbor_count: usize) -> f64 {
    neighbor_count as f64 * machine.t_s_us / machine.t_c_us
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §3 Example 1 end-to-end: the paper's exact numbers.
    #[test]
    fn example_1_total_time() {
        let machine = MachineParams::example_1();
        let tiling = Tiling::rectangular(&[10, 10]);
        let deps = DependenceSet::example_1();
        let space = IterationSpace::from_extents(&[10_000, 1_000]);
        let sched = NonOverlapSchedule::with_mapping(2, 0);
        let r = sched.analyze(&tiling, &deps, &space, &machine);

        assert_eq!(r.schedule_length, 1099); // P = 999 + 99 + 1
        assert_eq!(r.g, 100);
        assert_eq!(r.v_comm_points, 20);
        assert_eq!(r.neighbor_count, 1);
        assert!((r.t_comp_us - 100.0).abs() < 1e-9); // 100·t_c
        assert!((r.t_startup_us - 200.0).abs() < 1e-9); // 2·t_s
        assert!((r.t_transmit_us - 64.0).abs() < 1e-9); // 20·4·0.8
        assert!((r.step_us - 364.0).abs() < 1e-9);
        // T = 1099 × 364 t_c = 400 036 t_c ≈ 0.4 s.
        assert!((r.total_us - 400_036.0).abs() < 1e-6);
        assert!((r.total_secs() - 0.4).abs() < 0.001);
    }

    #[test]
    fn example_1_optimal_g() {
        // g = c·t_s/t_c with c = 1 ⇒ 100 (the paper's choice).
        let machine = MachineParams::example_1();
        assert_eq!(optimal_g_hodzic_shang(&machine, 1), 100.0);
    }

    #[test]
    fn mapping_defaults_to_longest_dimension() {
        let tiling = Tiling::rectangular(&[4, 4, 64]);
        let space = IterationSpace::from_extents(&[16, 16, 16384]);
        let ts = tiling.tiled_space(&space);
        let s = NonOverlapSchedule::new(&ts);
        assert_eq!(s.mapping().mapping_dim(), 2);
    }

    #[test]
    fn time_of_is_coordinate_sum() {
        let ts = IterationSpace::from_extents(&[4, 4, 8]);
        let s = NonOverlapSchedule::new(&ts);
        assert_eq!(s.time_of(&[0, 0, 0], &ts), 0);
        assert_eq!(s.time_of(&[1, 2, 3], &ts), 6);
        assert_eq!(s.schedule_length(&ts), 3 + 3 + 7 + 1);
    }

    #[test]
    fn schedule_respects_tile_dependences() {
        let ts = IterationSpace::from_extents(&[3, 3, 3]);
        let s = NonOverlapSchedule::new(&ts);
        let deps = DependenceSet::units(3);
        for t in ts.points() {
            for d in deps.iter() {
                let succ: Vec<i64> = t.iter().zip(d.components()).map(|(&a, &b)| a + b).collect();
                if ts.contains(&succ) {
                    assert!(s.time_of(&succ, &ts) > s.time_of(&t, &ts));
                }
            }
        }
    }

    #[test]
    fn free_communication_reduces_to_compute() {
        let machine = MachineParams::free_communication(2.0);
        let tiling = Tiling::rectangular(&[5, 5]);
        let deps = DependenceSet::units(2);
        let space = IterationSpace::from_extents(&[50, 25]);
        let s = NonOverlapSchedule::with_mapping(2, 0);
        let r = s.analyze(&tiling, &deps, &space, &machine);
        assert_eq!(r.t_comm_us(), 0.0);
        assert!((r.step_us - 50.0).abs() < 1e-9);
    }

    #[test]
    fn paper_3d_neighbor_count_is_two() {
        let machine = MachineParams::paper_cluster();
        let tiling = Tiling::rectangular(&[4, 4, 444]);
        let deps = DependenceSet::paper_3d();
        let space = IterationSpace::from_extents(&[16, 16, 16384]);
        let s = NonOverlapSchedule::with_mapping(3, 2);
        let r = s.analyze(&tiling, &deps, &space, &machine);
        assert_eq!(r.neighbor_count, 2);
        assert_eq!(r.v_comm_points, 2 * 1776);
        // 4 tiles × 4 tiles × ⌈16384/444⌉ = 37 tiles.
        assert_eq!(r.tiled_space.extents(), vec![4, 4, 37]);
        assert_eq!(r.schedule_length, 3 + 3 + 36 + 1);
    }
}
