//! Linear (hyperplane) time schedules (§2.5).
//!
//! A point `j` scheduled by the vector `Π` executes at
//! `t_j = ⌊(Π·j + t₀) / dispΠ⌋` with `t₀ = −min{Π·i : i ∈ J^n}` and
//! `dispΠ = min{Π·d : d ∈ D}` (Shang & Fortes). Validity requires
//! `Π·d > 0` for every dependence — every dependence advances time.

use crate::dependence::DependenceSet;
use crate::space::IterationSpace;
use std::fmt;

/// A linear schedule `Π` over an `n`-dimensional space.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LinearSchedule {
    pi: Vec<i64>,
}

impl LinearSchedule {
    /// Create a schedule from the hyperplane vector `Π`.
    ///
    /// # Panics
    /// Panics if `pi` is empty or all-zero.
    pub fn new(pi: Vec<i64>) -> Self {
        assert!(!pi.is_empty(), "schedule vector must be non-empty");
        assert!(
            pi.iter().any(|&x| x != 0),
            "schedule vector must be non-zero"
        );
        LinearSchedule { pi }
    }

    /// The all-ones schedule `Π = [1 1 … 1]` — optimal for a tiled space
    /// with unit dependences (§3).
    pub fn ones(dims: usize) -> Self {
        LinearSchedule::new(vec![1; dims])
    }

    /// The hyperplane vector.
    pub fn pi(&self) -> &[i64] {
        &self.pi
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.pi.len()
    }

    /// `Π·j`.
    pub fn dot(&self, j: &[i64]) -> i64 {
        assert_eq!(j.len(), self.pi.len(), "arity mismatch");
        self.pi.iter().zip(j).map(|(&a, &b)| a * b).sum()
    }

    /// Validity: `Π·d > 0` for every dependence.
    pub fn is_valid(&self, deps: &DependenceSet) -> bool {
        deps.iter().all(|d| d.dot(&self.pi) > 0)
    }

    /// The displacement `dispΠ = min{Π·d}` — how much `Π·j` must advance
    /// between dependent executions. Returns `None` for an empty set.
    pub fn displacement(&self, deps: &DependenceSet) -> Option<i64> {
        deps.iter().map(|d| d.dot(&self.pi)).min()
    }

    /// The offset `t₀ = −min{Π·j : j ∈ J}` making time start at 0.
    ///
    /// For a rectangular space the extremum is attained at a corner.
    pub fn t0(&self, space: &IterationSpace) -> i64 {
        -self.min_over(space)
    }

    fn min_over(&self, space: &IterationSpace) -> i64 {
        (0..self.dims())
            .map(|d| {
                let c = self.pi[d];
                if c >= 0 {
                    c * space.lower()[d]
                } else {
                    c * space.upper()[d]
                }
            })
            .sum()
    }

    fn max_over(&self, space: &IterationSpace) -> i64 {
        (0..self.dims())
            .map(|d| {
                let c = self.pi[d];
                if c >= 0 {
                    c * space.upper()[d]
                } else {
                    c * space.lower()[d]
                }
            })
            .sum()
    }

    /// Execution time of point `j`:
    /// `t_j = ⌊(Π·j + t₀) / dispΠ⌋`, with `disp = 1` when `D` is empty.
    pub fn time_of(&self, j: &[i64], space: &IterationSpace, deps: &DependenceSet) -> i64 {
        let disp = self.displacement(deps).unwrap_or(1).max(1);
        (self.dot(j) + self.t0(space)).div_euclid(disp)
    }

    /// Number of time hyperplanes needed for the whole space:
    /// `max t_j − min t_j + 1`.
    pub fn makespan(&self, space: &IterationSpace, deps: &DependenceSet) -> i64 {
        let disp = self.displacement(deps).unwrap_or(1).max(1);
        let t0 = self.t0(space);
        let tmax = (self.max_over(space) + t0).div_euclid(disp);
        let tmin = (self.min_over(space) + t0).div_euclid(disp);
        tmax - tmin + 1
    }
}

impl fmt::Debug for LinearSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Π{:?}", self.pi)
    }
}

/// Find a time-optimal linear schedule by bounded enumeration (the
/// Shang–Fortes problem \[10\], solved exactly for small coefficient
/// ranges, which covers every practical tile-space schedule: the
/// components of an optimal Π for a tiled space are tiny integers).
///
/// Searches `Π ∈ {-max_coeff..=max_coeff}^n \ {0}` for valid schedules
/// (`Π·d > 0` for all `d`) minimizing the makespan over `space`; ties
/// break towards the lexicographically smallest non-negative vector.
/// Returns `None` when no valid schedule exists in the range (e.g. an
/// empty range, or dependences spanning a full-dimensional cone needing
/// larger coefficients).
pub fn optimal_linear_schedule(
    space: &IterationSpace,
    deps: &DependenceSet,
    max_coeff: i64,
) -> Option<LinearSchedule> {
    assert!(max_coeff >= 1, "coefficient bound must be positive");
    let n = space.dims();
    assert_eq!(deps.dims(), n, "arity mismatch");
    let mut best: Option<(i64, Vec<i64>)> = None;
    let mut pi = vec![-max_coeff; n];
    loop {
        if pi.iter().any(|&c| c != 0) {
            let cand = LinearSchedule::new(pi.clone());
            if cand.is_valid(deps) {
                let ms = cand.makespan(space, deps);
                let better = match &best {
                    None => true,
                    Some((bms, bpi)) => ms < *bms || (ms == *bms && preferred(&pi, bpi)),
                };
                if better {
                    best = Some((ms, pi.clone()));
                }
            }
        }
        // Odometer increment.
        let mut d = n;
        loop {
            if d == 0 {
                return best.map(|(_, v)| LinearSchedule::new(v));
            }
            d -= 1;
            if pi[d] < max_coeff {
                pi[d] += 1;
                break;
            }
            pi[d] = -max_coeff;
        }
    }
}

/// Tie-break preference: fewer negative components, then smaller
/// absolute-value sum, then lexicographically smaller.
fn preferred(a: &[i64], b: &[i64]) -> bool {
    let neg = |v: &[i64]| v.iter().filter(|&&x| x < 0).count();
    let mag = |v: &[i64]| v.iter().map(|&x| x.abs()).sum::<i64>();
    (neg(a), mag(a), a.to_vec()) < (neg(b), mag(b), b.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_schedule_example_1() {
        // Example 1: tiled space 1000×100, Π = (1,1) ⇒ P = 999+99+1 = 1099.
        let s = LinearSchedule::ones(2);
        let space = IterationSpace::from_extents(&[1000, 100]);
        let deps = DependenceSet::units(2);
        assert!(s.is_valid(&deps));
        assert_eq!(s.makespan(&space, &deps), 1099);
    }

    #[test]
    fn time_of_starts_at_zero() {
        let s = LinearSchedule::ones(2);
        let space = IterationSpace::from_extents(&[10, 10]);
        let deps = DependenceSet::units(2);
        assert_eq!(s.time_of(&[0, 0], &space, &deps), 0);
        assert_eq!(s.time_of(&[9, 9], &space, &deps), 18);
    }

    #[test]
    fn time_of_with_offset_space() {
        let s = LinearSchedule::ones(2);
        let space = IterationSpace::new(vec![5, -3], vec![8, 0]);
        let deps = DependenceSet::units(2);
        assert_eq!(s.time_of(&[5, -3], &space, &deps), 0);
        assert_eq!(s.time_of(&[8, 0], &space, &deps), 6);
        assert_eq!(s.makespan(&space, &deps), 7);
    }

    #[test]
    fn displacement_scales_time() {
        // Π = (2, 2), D = {(1,0),(0,1)} ⇒ disp = 2; times halve.
        let s = LinearSchedule::new(vec![2, 2]);
        let space = IterationSpace::from_extents(&[4, 4]);
        let deps = DependenceSet::units(2);
        assert_eq!(s.displacement(&deps), Some(2));
        assert_eq!(s.time_of(&[3, 3], &space, &deps), 6);
        assert_eq!(s.makespan(&space, &deps), 7);
        // Same as Π = (1,1) on the same space.
        let ones = LinearSchedule::ones(2);
        assert_eq!(s.makespan(&space, &deps), ones.makespan(&space, &deps));
    }

    #[test]
    fn validity() {
        let deps = DependenceSet::from_vectors(2, vec![vec![1, -1], vec![0, 1]]);
        assert!(!LinearSchedule::ones(2).is_valid(&deps)); // Π·(1,-1) = 0
        assert!(LinearSchedule::new(vec![2, 1]).is_valid(&deps));
    }

    #[test]
    fn negative_schedule_components() {
        // Π = (1, -1) over a square: min at (0, u2), max at (u1, 0).
        let s = LinearSchedule::new(vec![1, -1]);
        let space = IterationSpace::from_extents(&[5, 3]);
        assert_eq!(s.t0(&space), 2);
        let deps = DependenceSet::from_vectors(2, vec![vec![1, 0]]);
        assert_eq!(s.makespan(&space, &deps), 7); // Π range −2..4
    }

    #[test]
    fn makespan_matches_bruteforce() {
        let cases = [
            (vec![1i64, 1], vec![3i64, 4]),
            (vec![1, 2], vec![5, 3]),
            (vec![2, 1], vec![4, 4]),
            (vec![1, 1, 1], vec![3, 3, 3]),
        ];
        for (pi, extents) in cases {
            let s = LinearSchedule::new(pi.clone());
            let space = IterationSpace::from_extents(&extents);
            let deps = DependenceSet::units(extents.len());
            let times: Vec<i64> = space
                .points()
                .map(|j| s.time_of(&j, &space, &deps))
                .collect();
            let lo = *times.iter().min().unwrap();
            let hi = *times.iter().max().unwrap();
            assert_eq!(lo, 0, "Π {pi:?}");
            assert_eq!(s.makespan(&space, &deps), hi - lo + 1, "Π {pi:?}");
        }
    }

    #[test]
    fn schedule_respects_dependences() {
        // For every valid schedule, t(j) < t(j + d) must hold when disp
        // divides exactly; in general t(j + d) ≥ t(j) + 1 when Π·d ≥ disp.
        let s = LinearSchedule::new(vec![1, 2]);
        let space = IterationSpace::from_extents(&[6, 6]);
        let deps = DependenceSet::example_1();
        assert!(s.is_valid(&deps));
        for j in space.points() {
            for d in deps.iter() {
                let succ: Vec<i64> = j.iter().zip(d.components()).map(|(&a, &b)| a + b).collect();
                if space.contains(&succ) {
                    assert!(
                        s.time_of(&succ, &space, &deps) > s.time_of(&j, &space, &deps),
                        "dependence {d:?} not respected at {j:?}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_vector_rejected() {
        let _ = LinearSchedule::new(vec![0, 0]);
    }

    #[test]
    fn optimal_schedule_unit_deps_is_ones() {
        let space = IterationSpace::from_extents(&[10, 6]);
        let deps = DependenceSet::units(2);
        let s = optimal_linear_schedule(&space, &deps, 2).unwrap();
        assert_eq!(s.pi(), &[1, 1]);
        assert_eq!(s.makespan(&space, &deps), 15);
    }

    #[test]
    fn optimal_schedule_example_1_deps() {
        // D = {(1,1),(1,0),(0,1)}: Π = (1,1) with disp 1 is optimal.
        let space = IterationSpace::from_extents(&[8, 8]);
        let deps = DependenceSet::example_1();
        let s = optimal_linear_schedule(&space, &deps, 2).unwrap();
        assert_eq!(s.makespan(&space, &deps), 15);
    }

    #[test]
    fn optimal_schedule_exploits_displacement() {
        // D = {(2,0),(0,2)}: Π=(1,1) has disp 2 → halved makespan 8;
        // no schedule can beat the longest chain, which is
        // (extent/2 + extent/2 − 1) = 7 steps… chains: points reachable
        // via +2 steps: chain length 4+4−1 = 7 ⇒ makespan ≥ 7.
        let space = IterationSpace::from_extents(&[8, 8]);
        let deps = DependenceSet::from_vectors(2, vec![vec![2, 0], vec![0, 2]]);
        let s = optimal_linear_schedule(&space, &deps, 2).unwrap();
        let ms = s.makespan(&space, &deps);
        assert!(ms <= 8, "{s:?} gives {ms}");
    }

    #[test]
    fn optimal_schedule_needs_skewed_pi() {
        // D = {(1,-1), (0,1)}: Π = (1,1) is invalid (Π·(1,−1) = 0);
        // the optimum needs an asymmetric vector like (2,1).
        let space = IterationSpace::from_extents(&[6, 6]);
        let deps = DependenceSet::from_vectors(2, vec![vec![1, -1], vec![0, 1]]);
        let s = optimal_linear_schedule(&space, &deps, 3).unwrap();
        assert!(s.is_valid(&deps));
        // Sanity: every in-space dependence chain is ordered.
        for j in space.points() {
            for d in deps.iter() {
                let succ: Vec<i64> = j.iter().zip(d.components()).map(|(&a, &b)| a + b).collect();
                if space.contains(&succ) {
                    assert!(s.time_of(&succ, &space, &deps) > s.time_of(&j, &space, &deps));
                }
            }
        }
    }

    #[test]
    fn optimal_schedule_none_for_non_pointed_cone() {
        // D = {(1,−2), (−2,1), (1,1)}: Π·(1,−2) > 0 and Π·(−2,1) > 0
        // imply Π₁+Π₂ < 0, contradicting Π·(1,1) > 0 — no linear
        // schedule exists at any coefficient bound (the dependence cone
        // is not pointed, i.e. the "loop" has a dependence cycle).
        let space = IterationSpace::from_extents(&[4, 4]);
        let deps = DependenceSet::from_vectors(2, vec![vec![1, -2], vec![-2, 1], vec![1, 1]]);
        assert!(optimal_linear_schedule(&space, &deps, 1).is_none());
        assert!(optimal_linear_schedule(&space, &deps, 3).is_none());
    }

    #[test]
    fn optimal_schedule_negative_components_reachable() {
        // D = {(1,−2), (−2,1)} alone *is* schedulable — with an all-
        // negative Π = (−1,−1) — which the search must find.
        let space = IterationSpace::from_extents(&[4, 4]);
        let deps = DependenceSet::from_vectors(2, vec![vec![1, -2], vec![-2, 1]]);
        let s = optimal_linear_schedule(&space, &deps, 1).unwrap();
        assert!(s.is_valid(&deps));
    }

    #[test]
    fn tie_break_prefers_nonnegative_small() {
        let space = IterationSpace::from_extents(&[5, 5]);
        let deps = DependenceSet::units(2);
        let s = optimal_linear_schedule(&space, &deps, 3).unwrap();
        assert!(s.pi().iter().all(|&c| c >= 0));
    }
}
