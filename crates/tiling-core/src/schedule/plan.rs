//! Execution plans derived from the schedule types.
//!
//! The schedules of this module family ([`NonOverlapSchedule`],
//! [`OverlapSchedule`]) describe *when* each tile runs; a [`StepPlan`]
//! is the small executable projection of a schedule onto one processor:
//! the number of local pipeline steps plus the per-step communication
//! strategy the schedule mandates. Executors (the `stencil::engine`
//! pipelined-rank engine) consume a `StepPlan` instead of hard-coding
//! either schedule, so the schedule type is the single source of
//! execution truth:
//!
//! * [`NonOverlapSchedule::step_plan`] → [`StepStrategy::Blocking`] —
//!   every step is a serialized *receive → compute → send* triplet
//!   (eq. 3, Hodzic–Shang);
//! * [`OverlapSchedule::step_plan`] → [`StepStrategy::Overlap`] — every
//!   step posts the receives of step `k+1` and the sends of step `k−1`
//!   around the computation of step `k` (eq. 4).

use crate::schedule::nonoverlap::NonOverlapSchedule;
use crate::schedule::overlap::OverlapSchedule;

/// Per-step communication strategy mandated by a schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepStrategy {
    /// Serialized receive → compute → send (the non-overlapping
    /// schedule of §3).
    Blocking,
    /// Pipelined Irecv(k+1) / Isend(k−1) / compute(k) / waits (the
    /// overlapping schedule of §4).
    Overlap,
}

/// One processor's executable view of a schedule: how many pipeline
/// steps it runs locally and how each step communicates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StepPlan {
    strategy: StepStrategy,
    steps: usize,
}

impl StepPlan {
    /// Build a plan directly. Prefer [`NonOverlapSchedule::step_plan`] /
    /// [`OverlapSchedule::step_plan`], which tie the strategy to the
    /// schedule type that mandates it.
    pub fn new(strategy: StepStrategy, steps: usize) -> Self {
        StepPlan { strategy, steps }
    }

    /// The per-step communication strategy.
    pub fn strategy(&self) -> StepStrategy {
        self.strategy
    }

    /// Number of local pipeline steps (tiles along the in-processor
    /// dimension).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Logical execution step of local tile `step` on a processor whose
    /// cross-processor coordinates sum to `cross_offset`:
    /// `Σ_{k≠i} j_k + j_i` under [`StepStrategy::Blocking`]
    /// (`Π = [1 … 1]`, eq. 3) and `2·Σ_{k≠i} j_k + j_i` under
    /// [`StepStrategy::Overlap`] (eq. 4 — a cross-processor hop costs
    /// one extra step in flight).
    pub fn logical_time(&self, cross_offset: i64, step: i64) -> i64 {
        match self.strategy {
            StepStrategy::Blocking => cross_offset + step,
            StepStrategy::Overlap => 2 * cross_offset + step,
        }
    }
}

impl NonOverlapSchedule {
    /// The executable projection of this schedule onto one processor:
    /// `steps` serialized receive → compute → send triplets.
    pub fn step_plan(&self, steps: usize) -> StepPlan {
        StepPlan::new(StepStrategy::Blocking, steps)
    }
}

impl OverlapSchedule {
    /// The executable projection of this schedule onto one processor:
    /// `steps` pipelined tiles, each overlapping its neighbors'
    /// communication.
    pub fn step_plan(&self, steps: usize) -> StepPlan {
        StepPlan::new(StepStrategy::Overlap, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::IterationSpace;

    #[test]
    fn schedule_types_select_strategy() {
        let b = NonOverlapSchedule::with_mapping(3, 2).step_plan(37);
        assert_eq!(b.strategy(), StepStrategy::Blocking);
        assert_eq!(b.steps(), 37);
        let o = OverlapSchedule::with_mapping(3, 2).step_plan(37);
        assert_eq!(o.strategy(), StepStrategy::Overlap);
        assert_eq!(o.steps(), 37);
    }

    #[test]
    fn logical_time_matches_time_of() {
        // The plan's flattened formula agrees with the full schedule's
        // `time_of` for every tile of a small 3-D tiled space mapped
        // along dimension 2.
        let ts = IterationSpace::from_extents(&[2, 3, 5]);
        let sched = OverlapSchedule::with_mapping(3, 2);
        let plan = sched.step_plan(5);
        for ci in 0..2 {
            for cj in 0..3 {
                for k in 0..5 {
                    assert_eq!(
                        plan.logical_time(ci + cj, k),
                        sched.time_of(&[ci, cj, k], &ts)
                    );
                }
            }
        }
        let nsched = NonOverlapSchedule::with_mapping(3, 2);
        let nplan = nsched.step_plan(5);
        for ci in 0..2 {
            for k in 0..5 {
                assert_eq!(nplan.logical_time(ci, k), nsched.time_of(&[ci, 0, k], &ts));
            }
        }
    }
}
