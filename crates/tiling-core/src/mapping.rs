//! Processor mapping of tiles (§4, §5).
//!
//! The paper assigns all tiles along the dimension with the **largest
//! tiled-space extent** to the same processor (the optimal space schedule
//! for UET-UCT grid graphs, \[1\]). A processor is therefore identified by
//! the tile coordinates with the mapping dimension projected out; in the
//! experiments the 16×16 (or 32×32) `i×j` cross-section is folded onto a
//! 4×4 processor grid by choosing the tile cross-section `4×4` (or `8×8`),
//! one tile column per processor.
//!
//! This module also computes the *messages* a tile exchanges per time
//! step: tile dependences grouped by destination processor, with exact
//! per-neighbor data volumes (needed for the overlap cost model, where
//! the number of startups `A₁`/`A₃` counts *messages*, not dependences).

use crate::dependence::DependenceSet;
use crate::space::{IterationSpace, Point};
use crate::tiling::Tiling;
use std::collections::BTreeMap;

/// Mapping of tiles to processors along one dimension.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProcessorMapping {
    mapping_dim: usize,
    dims: usize,
}

impl ProcessorMapping {
    /// Map along an explicit dimension.
    pub fn along(dims: usize, mapping_dim: usize) -> Self {
        assert!(mapping_dim < dims, "mapping dimension out of range");
        ProcessorMapping { mapping_dim, dims }
    }

    /// The paper's rule: map along the tiled space's longest dimension.
    pub fn by_longest_dimension(tiled_space: &IterationSpace) -> Self {
        ProcessorMapping {
            mapping_dim: tiled_space.longest_dimension(),
            dims: tiled_space.dims(),
        }
    }

    /// The dimension all of whose tiles share a processor.
    pub fn mapping_dim(&self) -> usize {
        self.mapping_dim
    }

    /// Arity of the tile space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The processor coordinates of a tile: its coordinates with the
    /// mapping dimension removed.
    pub fn processor_of(&self, tile: &[i64]) -> Point {
        assert_eq!(tile.len(), self.dims, "tile arity mismatch");
        tile.iter()
            .enumerate()
            .filter_map(|(d, &c)| (d != self.mapping_dim).then_some(c))
            .collect()
    }

    /// Number of processors used for a tiled space: the product of the
    /// extents of the non-mapping dimensions.
    pub fn processor_count(&self, tiled_space: &IterationSpace) -> u64 {
        assert_eq!(tiled_space.dims(), self.dims, "space arity mismatch");
        (0..self.dims)
            .filter(|&d| d != self.mapping_dim)
            .map(|d| tiled_space.extent(d) as u64)
            .product()
    }

    /// The processor-space extents (cross-section of the tiled space).
    pub fn processor_grid(&self, tiled_space: &IterationSpace) -> Vec<i64> {
        (0..self.dims)
            .filter(|&d| d != self.mapping_dim)
            .map(|d| tiled_space.extent(d))
            .collect()
    }

    /// Flatten processor coordinates to a rank in row-major order over the
    /// cross-section of `tiled_space`.
    pub fn rank_of(&self, tile: &[i64], tiled_space: &IterationSpace) -> usize {
        let proc = self.processor_of(tile);
        let lowers: Vec<i64> = (0..self.dims)
            .filter(|&d| d != self.mapping_dim)
            .map(|d| tiled_space.lower()[d])
            .collect();
        let grid = self.processor_grid(tiled_space);
        let mut rank = 0usize;
        for (i, (&c, (&l, &e))) in proc.iter().zip(lowers.iter().zip(&grid)).enumerate() {
            let local = c - l;
            assert!(
                local >= 0 && local < e,
                "tile outside space in proc dim {i}"
            );
            rank = rank * e as usize + local as usize;
        }
        rank
    }
}

/// A message a tile sends to one neighboring processor each time step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NeighborMessage {
    /// Offset of the destination processor in processor coordinates
    /// (tile-space offset with the mapping dimension removed; non-zero).
    pub processor_offset: Vec<i64>,
    /// Exact number of iteration-point values carried per tile execution.
    pub volume_points: i64,
}

/// Compute the per-neighbor messages of a tile under a mapping: tile
/// dependences whose destination lies on another processor, grouped by
/// destination processor, with exact data volumes.
///
/// For a rectangular tiling with contained non-negative dependences the
/// volume going to tile-offset `s ∈ {0,1}^n` from dependence `d` is
/// `Π_i (s_i = 1 ? d_i : side_i − d_i)` (points close enough to each
/// crossed face, far enough from the others); otherwise an exact
/// enumeration of the fundamental domain is used.
pub fn neighbor_messages(
    tiling: &Tiling,
    deps: &DependenceSet,
    mapping: &ProcessorMapping,
) -> Vec<NeighborMessage> {
    let n = tiling.dims();
    assert_eq!(deps.dims(), n, "dependence arity mismatch");
    assert_eq!(mapping.dims(), n, "mapping arity mismatch");
    let mut by_proc: BTreeMap<Vec<i64>, i64> = BTreeMap::new();

    let rect_ok = tiling.rectangular_sides().is_some_and(|sides| {
        deps.iter().all(|d| {
            d.components()
                .iter()
                .zip(sides)
                .all(|(&c, &s)| c >= 0 && c < s)
        })
    });

    if rect_ok {
        let sides = tiling.rectangular_sides().unwrap();
        for d in deps.iter() {
            let c = d.components();
            let supp: Vec<usize> = (0..n).filter(|&i| c[i] > 0).collect();
            for mask in 1..(1usize << supp.len()) {
                let mut s = vec![0i64; n];
                for (bit, &dim) in supp.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        s[dim] = 1;
                    }
                }
                let proc = mapping.processor_of(&s);
                if proc.iter().all(|&x| x == 0) {
                    continue; // same processor: free
                }
                let vol: i64 = (0..n)
                    .map(|i| if s[i] == 1 { c[i] } else { sides[i] - c[i] })
                    .product();
                if vol > 0 {
                    *by_proc.entry(proc).or_insert(0) += vol;
                }
            }
        }
    } else {
        // Exact enumeration over the fundamental domain: for each point j0
        // and dependence d, the value flows to tile offset ⌊H(j0+d)⌋.
        let domain = tiling.fundamental_domain();
        for d in deps.iter() {
            for j0 in &domain {
                let shifted: Vec<i64> = j0
                    .iter()
                    .zip(d.components())
                    .map(|(&a, &b)| a + b)
                    .collect();
                let s = tiling.tile_of(&shifted);
                if s.iter().all(|&x| x == 0) {
                    continue;
                }
                let proc = mapping.processor_of(&s);
                if proc.iter().all(|&x| x == 0) {
                    continue;
                }
                *by_proc.entry(proc).or_insert(0) += 1;
            }
        }
    }

    by_proc
        .into_iter()
        .map(|(processor_offset, volume_points)| NeighborMessage {
            processor_offset,
            volume_points,
        })
        .collect()
}

/// Total cross-processor communication volume per tile (should equal
/// formula (2) of §2.4 for axis-aligned unit-style dependence structures;
/// for diagonal dependences it is the *exact* count, whereas formula (2)
/// may double-count corner points crossing two faces at once).
pub fn total_message_volume(messages: &[NeighborMessage]) -> i64 {
    messages.iter().map(|m| m.volume_points).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;

    #[test]
    fn processor_of_drops_mapping_dim() {
        let m = ProcessorMapping::along(3, 2);
        assert_eq!(m.processor_of(&[3, 5, 7]), vec![3, 5]);
        let m0 = ProcessorMapping::along(3, 0);
        assert_eq!(m0.processor_of(&[3, 5, 7]), vec![5, 7]);
    }

    #[test]
    fn by_longest_dimension_picks_k_for_paper_spaces() {
        let tiling = Tiling::rectangular(&[4, 4, 444]);
        let space = IterationSpace::from_extents(&[16, 16, 16384]);
        let ts = tiling.tiled_space(&space);
        let m = ProcessorMapping::by_longest_dimension(&ts);
        assert_eq!(m.mapping_dim(), 2);
        assert_eq!(m.processor_count(&ts), 16);
        assert_eq!(m.processor_grid(&ts), vec![4, 4]);
    }

    #[test]
    fn rank_is_row_major_and_bijective() {
        let tiling = Tiling::rectangular(&[4, 4, 32]);
        let space = IterationSpace::from_extents(&[16, 16, 256]);
        let ts = tiling.tiled_space(&space); // 4×4×8 tiles ⇒ map along k
        let m = ProcessorMapping::by_longest_dimension(&ts);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..4 {
            for j in 0..4 {
                let r = m.rank_of(&[i, j, 0], &ts);
                assert!(seen.insert(r));
                assert!(r < 16);
                // Tiles along k share the rank.
                assert_eq!(m.rank_of(&[i, j, 3], &ts), r);
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn paper_3d_messages() {
        // Tile 4×4×444, mapping along k: two neighbors (1,0) and (0,1),
        // each carrying 4·444 = 1776 points.
        let tiling = Tiling::rectangular(&[4, 4, 444]);
        let deps = DependenceSet::paper_3d();
        let m = ProcessorMapping::along(3, 2);
        let msgs = neighbor_messages(&tiling, &deps, &m);
        assert_eq!(msgs.len(), 2);
        for msg in &msgs {
            assert_eq!(msg.volume_points, 1776);
        }
        let offs: Vec<_> = msgs.iter().map(|m| m.processor_offset.clone()).collect();
        assert!(offs.contains(&vec![0, 1]));
        assert!(offs.contains(&vec![1, 0]));
    }

    #[test]
    fn example_1_single_neighbor_with_volume_20() {
        // §3 Example 1: 10×10 tiles, mapping along i1 ⇒ one neighbor
        // carrying V_comm = 20 points (both (0,1) and (1,1) contribute).
        let tiling = Tiling::rectangular(&[10, 10]);
        let deps = DependenceSet::example_1();
        let m = ProcessorMapping::along(2, 0);
        let msgs = neighbor_messages(&tiling, &deps, &m);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].processor_offset, vec![1]);
        assert_eq!(msgs[0].volume_points, 20);
        assert_eq!(
            total_message_volume(&msgs) as i128,
            cost::v_comm_mapped(&tiling, &deps, 0).num()
        );
    }

    #[test]
    fn fast_path_matches_enumeration() {
        let tiling = Tiling::rectangular(&[5, 4]);
        let deps = DependenceSet::from_vectors(2, vec![vec![1, 1], vec![2, 0], vec![0, 3]]);
        let m = ProcessorMapping::along(2, 0);
        let fast = neighbor_messages(&tiling, &deps, &m);
        // Force the generic path with a non-rectangular but equivalent P?
        // Instead: recompute by brute force here.
        let mut by_proc: BTreeMap<Vec<i64>, i64> = BTreeMap::new();
        for d in deps.iter() {
            for j0 in tiling.fundamental_domain() {
                let shifted: Vec<i64> = j0
                    .iter()
                    .zip(d.components())
                    .map(|(&a, &b)| a + b)
                    .collect();
                let s = tiling.tile_of(&shifted);
                if s.iter().all(|&x| x == 0) {
                    continue;
                }
                let proc = m.processor_of(&s);
                if proc.iter().all(|&x| x == 0) {
                    continue;
                }
                *by_proc.entry(proc).or_insert(0) += 1;
            }
        }
        let brute: Vec<NeighborMessage> = by_proc
            .into_iter()
            .map(|(processor_offset, volume_points)| NeighborMessage {
                processor_offset,
                volume_points,
            })
            .collect();
        assert_eq!(fast, brute);
    }

    #[test]
    fn same_processor_dependences_are_free() {
        // Only dependence along the mapping dimension ⇒ no messages.
        let tiling = Tiling::rectangular(&[4, 4]);
        let deps = DependenceSet::from_vectors(2, vec![vec![1, 0]]);
        let m = ProcessorMapping::along(2, 0);
        assert!(neighbor_messages(&tiling, &deps, &m).is_empty());
    }

    #[test]
    fn diagonal_dep_exact_volume_not_double_counted() {
        // d = (1,1), tile 10×10, mapping along nothing relevant: both
        // dims cross-processor (mapping along a third dim is impossible
        // in 2-D, so map along dim 0 and check neighbor (1) volume).
        // Exact volume to processor +1 (j-direction): 9 (face) + 1
        // (corner) + … see mapping docs. Formula (2) would also give 20
        // here; exact per-neighbor sum must equal it for this structure.
        let tiling = Tiling::rectangular(&[10, 10]);
        let deps = DependenceSet::from_vectors(2, vec![vec![1, 1]]);
        let m = ProcessorMapping::along(2, 0);
        let msgs = neighbor_messages(&tiling, &deps, &m);
        assert_eq!(msgs.len(), 1);
        // (0,1) realization: 9 points; (1,1): 1 point ⇒ 10 total.
        assert_eq!(msgs[0].volume_points, 10);
    }

    #[test]
    fn processor_count_excludes_mapping_dim() {
        let m = ProcessorMapping::along(3, 1);
        let ts = IterationSpace::from_extents(&[3, 100, 5]);
        assert_eq!(m.processor_count(&ts), 15);
        assert_eq!(m.processor_grid(&ts), vec![3, 5]);
    }
}
