//! Loop generation: emit the loop nests that scan tiled (and possibly
//! skewed) iteration domains — the code a tiling compiler would write.
//!
//! Two generators:
//!
//! * [`tiled_rectangular`] — the §2.3 supernode scan for axis-aligned
//!   rectangular tiles over a rectangular space: outer tile loops,
//!   inner point loops with boundary clamps.
//! * [`transformed_domain`] — Fourier–Motzkin-derived loops scanning a
//!   unimodularly transformed (e.g. skewed) domain exactly.
//!
//! Both return a structured [`GeneratedNest`] whose bounds can be
//! *executed* ([`GeneratedNest::enumerate`]), so tests verify the
//! emitted loops scan exactly the intended set — the generated text is
//! a rendering of the verified structure, not a parallel implementation.

use crate::polyhedra::{Affine, Polyhedron};
use crate::rational::Rational;
use crate::space::IterationSpace;
use crate::tiling::Tiling;
use crate::transform::Unimodular;
use std::fmt::Write as _;

/// One loop level: `var = max(ceil(lowers)) ..= min(floor(uppers))`,
/// bounds affine in the outer variables.
#[derive(Clone, Debug)]
pub struct LoopLevel {
    /// Variable name.
    pub name: String,
    /// Lower bounds (the loop starts at the max of their ceilings).
    pub lowers: Vec<Affine>,
    /// Upper bounds (the loop ends at the min of their floors).
    pub uppers: Vec<Affine>,
}

/// A generated perfect loop nest.
#[derive(Clone, Debug)]
pub struct GeneratedNest {
    /// Outer-to-inner loop levels.
    pub levels: Vec<LoopLevel>,
    /// Body comment (what executes innermost).
    pub body: String,
}

impl GeneratedNest {
    /// Execute the generated bounds: enumerate every point the loops
    /// visit (the verification oracle for the emitted code).
    pub fn enumerate(&self) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        let mut point = vec![0i64; self.levels.len()];
        self.rec(0, &mut point, &mut out);
        out
    }

    fn rec(&self, d: usize, point: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) {
        if d == self.levels.len() {
            out.push(point.clone());
            return;
        }
        let level = &self.levels[d];
        let lo = level
            .lowers
            .iter()
            .map(|a| a.eval(point).ceil())
            .max()
            .expect("lower bounds exist");
        let hi = level
            .uppers
            .iter()
            .map(|a| a.eval(point).floor())
            .min()
            .expect("upper bounds exist");
        for v in lo..=hi {
            point[d] = i64::try_from(v).expect("bound fits i64");
            self.rec(d + 1, point, out);
        }
        point[d] = 0;
    }

    /// Render as pseudocode text.
    pub fn render(&self) -> String {
        let names: Vec<&str> = self.levels.iter().map(|l| l.name.as_str()).collect();
        let mut out = String::new();
        for (d, level) in self.levels.iter().enumerate() {
            let indent = "  ".repeat(d);
            let lo = render_bound(&level.lowers, &names, "max", "ceil");
            let hi = render_bound(&level.uppers, &names, "min", "floor");
            let _ = writeln!(out, "{indent}FOR {} = {lo} TO {hi} DO", level.name);
        }
        let indent = "  ".repeat(self.levels.len());
        let _ = writeln!(out, "{indent}{}", self.body);
        for d in (0..self.levels.len()).rev() {
            let _ = writeln!(out, "{}ENDFOR", "  ".repeat(d));
        }
        out
    }
}

fn render_bound(bounds: &[Affine], names: &[&str], combiner: &str, rounder: &str) -> String {
    let rendered: Vec<String> = bounds
        .iter()
        .map(|a| {
            let text = a.render(names);
            // Integer-valued forms need no rounding annotation.
            let fractional = a.coeffs.iter().any(|c| !c.is_integer()) || !a.constant.is_integer();
            if fractional {
                format!("{rounder}({text})")
            } else {
                text
            }
        })
        .collect();
    if rendered.len() == 1 {
        rendered.into_iter().next().expect("one bound")
    } else {
        format!("{combiner}({})", rendered.join(", "))
    }
}

/// Generate the tile + point loops scanning `space` under an
/// axis-aligned rectangular `tiling` (§2.3): `2n` loop levels
/// `tt_d` (tiles) then `t_d` (points, clamped to the space).
///
/// # Panics
/// Panics if the tiling is not rectangular.
pub fn tiled_rectangular(tiling: &Tiling, space: &IterationSpace, names: &[&str]) -> GeneratedNest {
    let sides = tiling
        .rectangular_sides()
        .expect("rectangular tiling required");
    let n = space.dims();
    assert_eq!(names.len(), n, "one name per dimension");
    let dims_total = 2 * n;
    let mut levels = Vec::with_capacity(dims_total);
    // Tile loops.
    let ts = tiling.tiled_space(space);
    for (d, name) in names.iter().enumerate() {
        levels.push(LoopLevel {
            name: format!("{name}_t"),
            lowers: vec![Affine::constant(
                dims_total,
                Rational::from_int(ts.lower()[d] as i128),
            )],
            uppers: vec![Affine::constant(
                dims_total,
                Rational::from_int(ts.upper()[d] as i128),
            )],
        });
    }
    // Point loops: max(l_d, side·tt_d) ..= min(u_d, side·tt_d + side − 1).
    for d in 0..n {
        let side = Rational::from_int(sides[d] as i128);
        let mut lo_tile = Affine::constant(dims_total, Rational::ZERO);
        lo_tile.coeffs[d] = side;
        let mut hi_tile = Affine::constant(dims_total, side - Rational::ONE);
        hi_tile.coeffs[d] = side;
        levels.push(LoopLevel {
            name: names[d].to_string(),
            lowers: vec![
                Affine::constant(dims_total, Rational::from_int(space.lower()[d] as i128)),
                lo_tile,
            ],
            uppers: vec![
                Affine::constant(dims_total, Rational::from_int(space.upper()[d] as i128)),
                hi_tile,
            ],
        });
    }
    GeneratedNest {
        levels,
        body: format!("body({})", names.join(", ")),
    }
}

/// Generate loops scanning the image of `space` under the unimodular
/// transformation `t`, via Fourier–Motzkin elimination.
pub fn transformed_domain(space: &IterationSpace, t: &Unimodular, names: &[&str]) -> GeneratedNest {
    let n = space.dims();
    assert_eq!(names.len(), n, "one name per dimension");
    let poly = Polyhedron::transformed_space(space, t);
    let mut levels = Vec::with_capacity(n);
    for (d, name) in names.iter().enumerate() {
        let mut proj = poly.clone();
        for e in ((d + 1)..n).rev() {
            proj = proj.eliminate(e);
        }
        let (lowers, uppers) = proj.bounds_of(d);
        assert!(
            !lowers.is_empty() && !uppers.is_empty(),
            "domain must be bounded"
        );
        levels.push(LoopLevel {
            name: name.to_string(),
            lowers,
            uppers,
        });
    }
    GeneratedNest {
        levels,
        body: format!("body({})", names.join(", ")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependence::DependenceSet;
    use crate::transform::legalizing_skew;

    #[test]
    fn rectangular_tiled_nest_scans_exactly_the_space() {
        let tiling = Tiling::rectangular(&[3, 5]);
        let space = IterationSpace::from_extents(&[10, 12]); // partial tiles
        let nest = tiled_rectangular(&tiling, &space, &["i", "j"]);
        let points = nest.enumerate();
        // Each visited (tt_i, tt_j, i, j): project to (i, j); every
        // space point exactly once, and the tile coords are consistent.
        let mut seen = std::collections::BTreeSet::new();
        for p in &points {
            let (tile, point) = (&p[..2], &p[2..]);
            assert_eq!(tiling.tile_of(point), tile.to_vec());
            assert!(space.contains(point));
            assert!(seen.insert(point.to_vec()), "duplicate {point:?}");
        }
        assert_eq!(seen.len() as u64, space.volume());
    }

    #[test]
    fn rectangular_render_shows_clamps() {
        let tiling = Tiling::rectangular(&[10, 10]);
        let space = IterationSpace::from_extents(&[10_000, 1_000]);
        let nest = tiled_rectangular(&tiling, &space, &["i1", "i2"]);
        let text = nest.render();
        assert!(text.contains("FOR i1_t = 0 TO 999"));
        assert!(text.contains("FOR i2_t = 0 TO 99"));
        assert!(text.contains("max(0, 10·i1_t)"));
        assert!(text.contains("min(9999, 10·i1_t + 9)"));
        assert_eq!(text.matches("ENDFOR").count(), 4);
    }

    #[test]
    fn skewed_nest_scans_exactly_the_transformed_domain() {
        let space = IterationSpace::from_extents(&[6, 5]);
        let t = Unimodular::skew(2, 1, 0, 1);
        let nest = transformed_domain(&space, &t, &["t", "x"]);
        let mut got = nest.enumerate();
        let mut expected: Vec<Vec<i64>> = space.points().map(|p| t.apply_point(&p)).collect();
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn skewed_render_has_dependent_bounds() {
        let space = IterationSpace::from_extents(&[6, 5]);
        let t = Unimodular::skew(2, 1, 0, 1);
        let text = transformed_domain(&space, &t, &["t", "x"]).render();
        assert!(text.contains("FOR t = 0 TO 5"), "{text}");
        // Inner bounds depend on t.
        assert!(text.contains("FOR x = t TO t + 4"), "{text}");
    }

    #[test]
    fn legalized_jacobi_domain_generates() {
        // The full §transform story: skew Jacobi deps, then generate the
        // loops of the skewed domain and verify the scan.
        let deps = DependenceSet::from_vectors(2, vec![vec![1, -1], vec![1, 0], vec![1, 1]]);
        let t = legalizing_skew(&deps).unwrap();
        let space = IterationSpace::from_extents(&[8, 16]);
        let nest = transformed_domain(&space, &t, &["t", "x"]);
        assert_eq!(nest.enumerate().len() as u64, space.volume());
    }

    #[test]
    fn three_d_transformed_domain() {
        let space = IterationSpace::from_extents(&[3, 4, 3]);
        let t = Unimodular::skew(3, 2, 0, 1).compose(&Unimodular::skew(3, 1, 0, 2));
        let nest = transformed_domain(&space, &t, &["a", "b", "c"]);
        let mut got = nest.enumerate();
        let mut expected: Vec<Vec<i64>> = space.points().map(|p| t.apply_point(&p)).collect();
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn identity_transform_is_plain_box() {
        let space = IterationSpace::from_extents(&[4, 4]);
        let nest = transformed_domain(&space, &Unimodular::identity(2), &["i", "j"]);
        let text = nest.render();
        assert!(text.contains("FOR i = 0 TO 3"));
        assert!(text.contains("FOR j = 0 TO 3"));
        assert_eq!(nest.enumerate().len(), 16);
    }
}
