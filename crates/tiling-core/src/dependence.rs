//! Uniform (constant) loop-carried dependence vectors (§2.2).
//!
//! The paper's model assumes every dependence is a constant vector
//! `d = (d_1, …, d_n)` independent of the iteration indices. A dependence
//! set `D` must be *lexicographically positive* for the original loop to
//! be sequentially valid, and the tiling assumption `⌊HD⌋ = 0` (§2.3)
//! additionally requires every vector to fit inside a single tile.

use crate::matrix::IntMatrix;
use std::fmt;

/// A single constant dependence vector.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Dependence(Vec<i64>);

impl Dependence {
    /// Create a dependence vector.
    ///
    /// # Panics
    /// Panics if empty.
    pub fn new(v: Vec<i64>) -> Self {
        assert!(!v.is_empty(), "dependence vector must be non-empty");
        Dependence(v)
    }

    /// Components of the vector.
    pub fn components(&self) -> &[i64] {
        &self.0
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Lexicographic positivity: the first non-zero component is > 0.
    /// The zero vector is *not* lexicographically positive.
    pub fn is_lex_positive(&self) -> bool {
        for &c in &self.0 {
            if c != 0 {
                return c > 0;
            }
        }
        false
    }

    /// Inner product with an integer vector (used by schedules: `Π·d`).
    pub fn dot(&self, w: &[i64]) -> i64 {
        assert_eq!(w.len(), self.dims(), "arity mismatch in dot product");
        self.0.iter().zip(w).map(|(&a, &b)| a * b).sum()
    }
}

impl fmt::Debug for Dependence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{:?}", self.0)
    }
}

impl From<Vec<i64>> for Dependence {
    fn from(v: Vec<i64>) -> Self {
        Dependence::new(v)
    }
}

/// The dependence set `D` of an algorithm — a collection of uniform
/// dependence vectors, all of the same arity.
#[derive(Clone, PartialEq, Eq)]
pub struct DependenceSet {
    dims: usize,
    vectors: Vec<Dependence>,
}

impl DependenceSet {
    /// Create a dependence set of arity `dims`. The set may start empty
    /// (a fully parallel loop nest) and be extended with [`Self::push`].
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dependence set needs ≥ 1 dimension");
        DependenceSet {
            dims,
            vectors: Vec::new(),
        }
    }

    /// Build from a list of vectors.
    ///
    /// # Panics
    /// Panics on arity mismatches.
    pub fn from_vectors(dims: usize, vectors: Vec<Vec<i64>>) -> Self {
        let mut s = DependenceSet::new(dims);
        for v in vectors {
            s.push(Dependence::new(v));
        }
        s
    }

    /// Add a vector.
    ///
    /// # Panics
    /// Panics if the vector's arity differs from the set's.
    pub fn push(&mut self, d: Dependence) {
        assert_eq!(d.dims(), self.dims, "dependence arity mismatch");
        self.vectors.push(d);
    }

    /// Dimensionality `n`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of dependence vectors `m`.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True iff the set has no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Iterate over the vectors.
    pub fn iter(&self) -> impl Iterator<Item = &Dependence> {
        self.vectors.iter()
    }

    /// The `i`-th vector.
    pub fn get(&self, i: usize) -> &Dependence {
        &self.vectors[i]
    }

    /// All vectors lexicographically positive ⇒ the sequential loop order
    /// respects every dependence.
    pub fn all_lex_positive(&self) -> bool {
        self.vectors.iter().all(Dependence::is_lex_positive)
    }

    /// The `n × m` dependence matrix `D` with one *column* per vector —
    /// the layout used by the legality condition `HD ≥ 0`.
    pub fn as_matrix(&self) -> IntMatrix {
        assert!(!self.is_empty(), "dependence matrix of empty set");
        let mut m = IntMatrix::zeros(self.dims, self.vectors.len());
        for (j, d) in self.vectors.iter().enumerate() {
            for (i, &c) in d.components().iter().enumerate() {
                m[(i, j)] = c;
            }
        }
        m
    }

    /// The unit dependence set `{e_1, …, e_n}` — the structure of a tiled
    /// space whose tiles fully contain the original dependences (§2.3).
    pub fn units(dims: usize) -> Self {
        let mut s = DependenceSet::new(dims);
        for i in 0..dims {
            let mut v = vec![0; dims];
            v[i] = 1;
            s.push(Dependence::new(v));
        }
        s
    }

    /// The dependence set of the paper's 3-D experimental kernel
    /// `A(i,j,k) = √A(i−1,j,k) + √A(i,j−1,k) + √A(i,j,k−1)`.
    pub fn paper_3d() -> Self {
        DependenceSet::from_vectors(3, vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]])
    }

    /// The dependence set of Example 1 (§3):
    /// `A(i1,i2) = A(i1−1,i2−1) + A(i1−1,i2) + A(i1,i2−1)`.
    pub fn example_1() -> Self {
        DependenceSet::from_vectors(2, vec![vec![1, 1], vec![1, 0], vec![0, 1]])
    }
}

impl fmt::Debug for DependenceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{:?}", self.vectors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_positive() {
        assert!(Dependence::new(vec![1, -5]).is_lex_positive());
        assert!(Dependence::new(vec![0, 1]).is_lex_positive());
        assert!(!Dependence::new(vec![0, 0]).is_lex_positive());
        assert!(!Dependence::new(vec![-1, 3]).is_lex_positive());
        assert!(!Dependence::new(vec![0, -1]).is_lex_positive());
    }

    #[test]
    fn dot_product() {
        let d = Dependence::new(vec![1, 2, 3]);
        assert_eq!(d.dot(&[1, 1, 1]), 6);
        assert_eq!(d.dot(&[2, 0, -1]), -1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn dot_arity_mismatch() {
        Dependence::new(vec![1, 2]).dot(&[1]);
    }

    #[test]
    fn set_construction_and_queries() {
        let d = DependenceSet::example_1();
        assert_eq!(d.dims(), 2);
        assert_eq!(d.len(), 3);
        assert!(d.all_lex_positive());
        assert_eq!(d.get(0).components(), &[1, 1]);
    }

    #[test]
    fn paper_3d_is_unit_basis() {
        let d = DependenceSet::paper_3d();
        assert_eq!(d.len(), 3);
        assert!(d.all_lex_positive());
        let u = DependenceSet::units(3);
        assert_eq!(d, u);
    }

    #[test]
    fn matrix_layout_columns_are_vectors() {
        let d = DependenceSet::example_1();
        let m = d.as_matrix();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.col(0), vec![1, 1]);
        assert_eq!(m.col(1), vec![1, 0]);
        assert_eq!(m.col(2), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn push_arity_mismatch_panics() {
        let mut s = DependenceSet::new(2);
        s.push(Dependence::new(vec![1, 2, 3]));
    }

    #[test]
    fn units_structure() {
        let u = DependenceSet::units(4);
        assert_eq!(u.len(), 4);
        for (i, d) in u.iter().enumerate() {
            for (j, &c) in d.components().iter().enumerate() {
                assert_eq!(c, i64::from(i == j));
            }
        }
    }

    #[test]
    fn not_lex_positive_detected() {
        let d = DependenceSet::from_vectors(2, vec![vec![1, 0], vec![-1, 1]]);
        assert!(!d.all_lex_positive());
    }

    #[test]
    fn empty_set() {
        let d = DependenceSet::new(3);
        assert!(d.is_empty());
        assert!(d.all_lex_positive()); // vacuously
    }
}
