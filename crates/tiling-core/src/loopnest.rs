//! The paper's algorithm model (§2.1): perfectly nested FOR-loops with
//! constant bounds and assignment statements over uniformly-indexed arrays.
//!
//! ```text
//! FOR i_1 = l_1 TO u_1 DO
//!   ...
//!   FOR i_n = l_n TO u_n DO
//!     AS_1(i) … AS_k(i)
//!   ENDFOR
//! ENDFOR
//! ```
//!
//! Each statement is `V_0[i] = E(V_1[i + c_1], …, V_l[i + c_l])` with
//! constant offsets `c_j`. A *flow* dependence arises from a read at offset
//! `c` (reading `V[i + c]`, written at iteration `i + c`): the dependence
//! vector is `−c` and must be lexicographically positive (i.e. reads look
//! strictly "backwards"). [`LoopNest::dependences`] extracts the set and
//! deduplicates it, exactly what a tiling front-end would feed the rest of
//! the library.

use crate::dependence::{Dependence, DependenceSet};
use crate::space::IterationSpace;
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of an array variable (`V_0`, `V_1`, …).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ArrayId(pub usize);

/// A uniform array access `V[i + offset]`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Access {
    /// The array being accessed.
    pub array: ArrayId,
    /// Constant offset added to the iteration vector.
    pub offset: Vec<i64>,
}

impl Access {
    /// An access `array[i + offset]`.
    pub fn new(array: ArrayId, offset: Vec<i64>) -> Self {
        Access { array, offset }
    }

    /// The identity access `array[i]`.
    pub fn at(array: ArrayId, dims: usize) -> Self {
        Access {
            array,
            offset: vec![0; dims],
        }
    }
}

/// An assignment statement `write = E(reads…)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Statement {
    /// The output access `V_0[i + c_w]` (usually `c_w = 0`).
    pub write: Access,
    /// The input accesses `V_j[i + c_j]`.
    pub reads: Vec<Access>,
}

impl Statement {
    /// Create a statement.
    pub fn new(write: Access, reads: Vec<Access>) -> Self {
        Statement { write, reads }
    }
}

/// Errors produced while validating a loop nest.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LoopNestError {
    /// An access has an offset of the wrong arity.
    ArityMismatch {
        /// Expected arity (loop depth).
        expected: usize,
        /// Found arity.
        found: usize,
    },
    /// A dependence extracted from the accesses is not lexicographically
    /// positive, so the sequential loop would read a value not yet written.
    NotLexPositive(Vec<i64>),
}

impl fmt::Display for LoopNestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopNestError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "access arity {found} does not match loop depth {expected}"
                )
            }
            LoopNestError::NotLexPositive(v) => {
                write!(f, "dependence {v:?} is not lexicographically positive")
            }
        }
    }
}

impl std::error::Error for LoopNestError {}

/// A perfectly nested loop with constant bounds and a statement body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LoopNest {
    space: IterationSpace,
    statements: Vec<Statement>,
}

impl LoopNest {
    /// Create a loop nest; validates access arities against the loop depth.
    pub fn new(space: IterationSpace, statements: Vec<Statement>) -> Result<Self, LoopNestError> {
        let n = space.dims();
        for st in &statements {
            for acc in std::iter::once(&st.write).chain(&st.reads) {
                if acc.offset.len() != n {
                    return Err(LoopNestError::ArityMismatch {
                        expected: n,
                        found: acc.offset.len(),
                    });
                }
            }
        }
        Ok(LoopNest { space, statements })
    }

    /// The iteration space `J^n`.
    pub fn space(&self) -> &IterationSpace {
        &self.space
    }

    /// The statement body.
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// Extract the uniform flow-dependence set.
    ///
    /// For a read `V[i + c]` of an array written as `V[i + w]` (same array,
    /// any statement), iteration `i` depends on iteration `i + c − w`; the
    /// dependence vector is `w − c`. Zero vectors (same-iteration flow, e.g.
    /// reading your own write) are dropped; duplicates are deduplicated.
    ///
    /// Returns an error if any extracted vector is not lexicographically
    /// positive — the loop as written would not be sequentially valid under
    /// the paper's model.
    pub fn dependences(&self) -> Result<DependenceSet, LoopNestError> {
        let n = self.space.dims();
        let mut seen: BTreeSet<Vec<i64>> = BTreeSet::new();
        for st in &self.statements {
            for read in &st.reads {
                // Match this read against every write of the same array.
                for wst in &self.statements {
                    if wst.write.array != read.array {
                        continue;
                    }
                    let d: Vec<i64> = (0..n)
                        .map(|k| wst.write.offset[k] - read.offset[k])
                        .collect();
                    if d.iter().all(|&x| x == 0) {
                        continue;
                    }
                    seen.insert(d);
                }
            }
        }
        let mut set = DependenceSet::new(n);
        for v in seen {
            let d = Dependence::new(v.clone());
            if !d.is_lex_positive() {
                return Err(LoopNestError::NotLexPositive(v));
            }
            set.push(d);
        }
        Ok(set)
    }

    /// Example 1 of the paper (§3): the 10000×1000 2-D loop
    /// `A(i1,i2) = A(i1−1,i2−1) + A(i1−1,i2) + A(i1,i2−1)`.
    pub fn example_1() -> Self {
        let a = ArrayId(0);
        let st = Statement::new(
            Access::at(a, 2),
            vec![
                Access::new(a, vec![-1, -1]),
                Access::new(a, vec![-1, 0]),
                Access::new(a, vec![0, -1]),
            ],
        );
        LoopNest::new(IterationSpace::from_extents(&[10_000, 1_000]), vec![st])
            .expect("example 1 is well-formed")
    }

    /// The paper's 3-D experimental kernel (§5) on a given space:
    /// `A(i,j,k) = √A(i−1,j,k) + √A(i,j−1,k) + √A(i,j,k−1)`.
    pub fn paper_3d(extents: &[i64; 3]) -> Self {
        let a = ArrayId(0);
        let st = Statement::new(
            Access::at(a, 3),
            vec![
                Access::new(a, vec![-1, 0, 0]),
                Access::new(a, vec![0, -1, 0]),
                Access::new(a, vec![0, 0, -1]),
            ],
        );
        LoopNest::new(IterationSpace::from_extents(extents), vec![st])
            .expect("paper 3-D kernel is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_1_dependences() {
        let nest = LoopNest::example_1();
        let d = nest.dependences().unwrap();
        assert_eq!(d.len(), 3);
        let vecs: Vec<_> = d.iter().map(|x| x.components().to_vec()).collect();
        assert!(vecs.contains(&vec![1, 1]));
        assert!(vecs.contains(&vec![1, 0]));
        assert!(vecs.contains(&vec![0, 1]));
    }

    #[test]
    fn paper_3d_dependences_are_units() {
        let nest = LoopNest::paper_3d(&[16, 16, 16384]);
        let d = nest.dependences().unwrap();
        let got: std::collections::BTreeSet<Vec<i64>> =
            d.iter().map(|x| x.components().to_vec()).collect();
        let want: std::collections::BTreeSet<Vec<i64>> = DependenceSet::units(3)
            .iter()
            .map(|x| x.components().to_vec())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn arity_validation() {
        let a = ArrayId(0);
        let st = Statement::new(Access::at(a, 3), vec![Access::new(a, vec![-1, 0])]);
        let err = LoopNest::new(IterationSpace::from_extents(&[4, 4, 4]), vec![st]).unwrap_err();
        assert_eq!(
            err,
            LoopNestError::ArityMismatch {
                expected: 3,
                found: 2
            }
        );
    }

    #[test]
    fn forward_read_rejected() {
        // Reading A(i+1, j) means a negative dependence (−1, 0): invalid.
        let a = ArrayId(0);
        let st = Statement::new(Access::at(a, 2), vec![Access::new(a, vec![1, 0])]);
        let nest = LoopNest::new(IterationSpace::from_extents(&[4, 4]), vec![st]).unwrap();
        assert!(matches!(
            nest.dependences(),
            Err(LoopNestError::NotLexPositive(_))
        ));
    }

    #[test]
    fn independent_arrays_no_dependence() {
        // B[i] = A[i-1]: reads a *different* array, so no flow dependence
        // on B; and A is never written, so none on A either.
        let a = ArrayId(0);
        let b = ArrayId(1);
        let st = Statement::new(Access::at(b, 1), vec![Access::new(a, vec![-1])]);
        let nest = LoopNest::new(IterationSpace::from_extents(&[10]), vec![st]).unwrap();
        assert!(nest.dependences().unwrap().is_empty());
    }

    #[test]
    fn duplicate_dependences_deduplicated() {
        // Two reads at the same offset give one dependence vector.
        let a = ArrayId(0);
        let st = Statement::new(
            Access::at(a, 2),
            vec![Access::new(a, vec![-1, 0]), Access::new(a, vec![-1, 0])],
        );
        let nest = LoopNest::new(IterationSpace::from_extents(&[4, 4]), vec![st]).unwrap();
        assert_eq!(nest.dependences().unwrap().len(), 1);
    }

    #[test]
    fn multi_statement_cross_dependences() {
        // AS1: X[i] = Y[i-2];  AS2: Y[i] = X[i-1].
        let x = ArrayId(0);
        let y = ArrayId(1);
        let st1 = Statement::new(Access::at(x, 1), vec![Access::new(y, vec![-2])]);
        let st2 = Statement::new(Access::at(y, 1), vec![Access::new(x, vec![-1])]);
        let nest = LoopNest::new(IterationSpace::from_extents(&[10]), vec![st1, st2]).unwrap();
        let d = nest.dependences().unwrap();
        let vecs: Vec<_> = d.iter().map(|v| v.components().to_vec()).collect();
        assert!(vecs.contains(&vec![2]));
        assert!(vecs.contains(&vec![1]));
    }

    #[test]
    fn same_iteration_flow_dropped() {
        // A[i] then read A[i]: zero vector must not appear.
        let a = ArrayId(0);
        let st = Statement::new(Access::at(a, 1), vec![Access::at(a, 1)]);
        let nest = LoopNest::new(IterationSpace::from_extents(&[5]), vec![st]).unwrap();
        assert!(nest.dependences().unwrap().is_empty());
    }

    #[test]
    fn error_display() {
        let e = LoopNestError::NotLexPositive(vec![-1, 0]);
        assert!(e.to_string().contains("lexicographically"));
    }
}
