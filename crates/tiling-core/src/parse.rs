//! A small front-end: parse textual loop nests in the paper's notation
//! (§2.1) into [`LoopNest`] values.
//!
//! ```text
//! FOR i1 = 0 TO 9999 DO
//!   FOR i2 = 0 TO 999 DO
//!     A(i1, i2) = A(i1-1, i2-1) + A(i1-1, i2) + A(i1, i2-1)
//!   ENDFOR
//! ENDFOR
//! ```
//!
//! Supported: perfectly nested `FOR v = lo TO hi` headers (constant
//! bounds), one or more assignment statements over arrays with *uniform*
//! accesses (`A(i1-1, i2+2)` — each index position must use the loop
//! variable of that depth plus a constant offset), arithmetic operators
//! and a small set of intrinsic functions (`sqrt`, `sin`, `cos`, `exp`,
//! `abs`, `min`, `max`) on the right-hand side, which are ignored for
//! dependence purposes. Keywords are case-insensitive; `DO` and
//! semicolons are optional.

use crate::loopnest::{Access, ArrayId, LoopNest, LoopNestError, Statement};
use crate::space::IterationSpace;
use std::collections::HashMap;
use std::fmt;

/// Parse errors with (line, column) spans (1-based).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based starting column.
    pub col: usize,
    /// Span width in columns — the length of the offending token
    /// (1 for single-character tokens and point errors).
    pub len: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// 1-based column one past the end of the span.
    pub fn end_col(&self) -> usize {
        self.col + self.len.max(1)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len > 1 {
            write!(
                f,
                "{}:{}-{}: {}",
                self.line,
                self.col,
                self.end_col() - 1,
                self.message
            )
        } else {
            write!(f, "{}:{}: {}", self.line, self.col, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
    len: usize,
}

/// A bare (line, col, len) source span, without a token.
#[derive(Clone, Copy, Debug)]
struct Span {
    line: usize,
    col: usize,
    len: usize,
}

fn err_at<T>(span: Span, message: impl Into<String>) -> Result<T, ParseError> {
    err_span(span.line, span.col, span.len, message)
}

fn err<T>(line: usize, col: usize, message: impl Into<String>) -> Result<T, ParseError> {
    err_span(line, col, 1, message)
}

fn err_span<T>(
    line: usize,
    col: usize,
    len: usize,
    message: impl Into<String>,
) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        col,
        len: len.max(1),
        message: message.into(),
    })
}

fn tokenize(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    for (li, raw_line) in src.lines().enumerate() {
        let line = li + 1;
        // Strip comments.
        let code = raw_line.split("//").next().unwrap_or("");
        let bytes: Vec<char> = code.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let col = i + 1;
            let tok = match c {
                ' ' | '\t' | '\r' | ';' => {
                    i += 1;
                    continue;
                }
                '=' => Tok::Assign,
                '+' => Tok::Plus,
                '-' => Tok::Minus,
                '*' => Tok::Star,
                '/' => Tok::Slash,
                '(' | '[' => Tok::LParen,
                ')' | ']' => Tok::RParen,
                ',' => Tok::Comma,
                '0'..='9' => {
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let s: String = bytes[start..i].iter().collect();
                    let v: i64 = s.parse().map_err(|_| ParseError {
                        line,
                        col,
                        len: i - start,
                        message: format!("integer literal out of range: {s}"),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Int(v),
                        line,
                        col,
                        len: i - start,
                    });
                    continue;
                }
                c if c.is_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                    let s: String = bytes[start..i].iter().collect();
                    out.push(Spanned {
                        tok: Tok::Ident(s),
                        line,
                        col,
                        len: i - start,
                    });
                    continue;
                }
                other => return err(line, col, format!("unexpected character {other:?}")),
            };
            out.push(Spanned {
                tok,
                line,
                col,
                len: 1,
            });
            i += 1;
        }
    }
    Ok(out)
}

/// Intrinsic function names ignored on the right-hand side.
const INTRINSICS: &[&str] = &["sqrt", "sin", "cos", "exp", "abs", "min", "max"];

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.toks.get(self.pos)
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Spanned { tok: Tok::Ident(s), .. }) if s.eq_ignore_ascii_case(kw))
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    /// Where "end of input" is: one column past the last token.
    fn eof_pos(&self) -> (usize, usize) {
        self.toks
            .last()
            .map(|s| (s.line, s.col + s.len))
            .unwrap_or((1, 1))
    }

    fn eof_err<T>(&self, message: String) -> Result<T, ParseError> {
        let (line, col) = self.eof_pos();
        err(line, col, message)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(Spanned {
                tok: Tok::Ident(s), ..
            }) if s.eq_ignore_ascii_case(kw) => Ok(()),
            Some(s) => err_span(
                s.line,
                s.col,
                s.len,
                format!("expected `{kw}`, found {:?}", s.tok),
            ),
            None => self.eof_err(format!("expected `{kw}`, found end of input")),
        }
    }

    fn expect_tok(&mut self, want: Tok, what: &str) -> Result<Spanned, ParseError> {
        match self.bump() {
            Some(s) if s.tok == want => Ok(s),
            Some(s) => err_span(
                s.line,
                s.col,
                s.len,
                format!("expected {what}, found {:?}", s.tok),
            ),
            None => self.eof_err(format!("expected {what}, found end of input")),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        match self.bump() {
            Some(Spanned {
                tok: Tok::Ident(s),
                line,
                col,
                len,
            }) => Ok((s, Span { line, col, len })),
            Some(s) => err_span(
                s.line,
                s.col,
                s.len,
                format!("expected {what}, found {:?}", s.tok),
            ),
            None => self.eof_err(format!("expected {what}, found end of input")),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<i64, ParseError> {
        // Allow a leading minus.
        let neg = if matches!(
            self.peek(),
            Some(Spanned {
                tok: Tok::Minus,
                ..
            })
        ) {
            self.bump();
            true
        } else {
            false
        };
        match self.bump() {
            Some(Spanned {
                tok: Tok::Int(v), ..
            }) => Ok(if neg { -v } else { v }),
            Some(s) => err_span(
                s.line,
                s.col,
                s.len,
                format!("expected {what}, found {:?}", s.tok),
            ),
            None => self.eof_err(format!("expected {what}, found end of input")),
        }
    }

    /// Parse one index expression `var (± const)?`; must reference the
    /// loop variable at `depth`.
    fn index_expr(
        &mut self,
        loop_vars: &HashMap<String, usize>,
        depth: usize,
    ) -> Result<i64, ParseError> {
        let (name, span) = self.expect_ident("an index variable")?;
        let Some(&var_depth) = loop_vars.get(&name) else {
            return err_at(span, format!("unknown index variable `{name}`"));
        };
        if var_depth != depth {
            return err_at(
                span,
                format!(
                    "index position {} must use loop variable of that depth (found `{name}`); \
                     non-uniform accesses are outside the paper's model",
                    depth + 1
                ),
            );
        }
        match self.peek().map(|s| s.tok.clone()) {
            Some(Tok::Plus) => {
                self.bump();
                self.expect_int("an offset")
            }
            Some(Tok::Minus) => {
                self.bump();
                Ok(-self.expect_int("an offset")?)
            }
            _ => Ok(0),
        }
    }

    /// Parse an array access `NAME ( idx , idx , … )`.
    fn access(
        &mut self,
        arrays: &mut HashMap<String, ArrayId>,
        loop_vars: &HashMap<String, usize>,
        dims: usize,
    ) -> Result<Access, ParseError> {
        let (name, span) = self.expect_ident("an array name")?;
        let next_id = ArrayId(arrays.len());
        let id = *arrays.entry(name.clone()).or_insert(next_id);
        self.expect_tok(Tok::LParen, "`(`")?;
        let mut offset = Vec::with_capacity(dims);
        for d in 0..dims {
            offset.push(self.index_expr(loop_vars, d)?);
            if d + 1 < dims {
                self.expect_tok(Tok::Comma, "`,`")?;
            }
        }
        let close = self.expect_tok(Tok::RParen, "`)`");
        if close.is_err() {
            return err_at(span, format!("array `{name}`: expected {dims} indices"));
        }
        Ok(Access::new(id, offset))
    }

    /// Parse a right-hand side, collecting read accesses and skipping
    /// operators, literals and intrinsic calls. Stops at a token that
    /// can't continue an expression (e.g. `ENDFOR` or a new statement).
    fn rhs(
        &mut self,
        arrays: &mut HashMap<String, ArrayId>,
        loop_vars: &HashMap<String, usize>,
        dims: usize,
        reads: &mut Vec<Access>,
    ) -> Result<(), ParseError> {
        let mut want_operand = true;
        loop {
            match self.peek().cloned() {
                Some(Spanned {
                    tok: Tok::Ident(s), ..
                }) => {
                    if s.eq_ignore_ascii_case("endfor") || s.eq_ignore_ascii_case("for") {
                        break;
                    }
                    if !want_operand {
                        // Next statement begins (array name followed by
                        // `(...) =`) — leave it to the caller.
                        break;
                    }
                    if INTRINSICS.iter().any(|f| s.eq_ignore_ascii_case(f)) {
                        self.bump();
                        self.expect_tok(Tok::LParen, "`(` after intrinsic")?;
                        self.rhs(arrays, loop_vars, dims, reads)?;
                        self.expect_tok(Tok::RParen, "`)` closing intrinsic")?;
                    } else if loop_vars.contains_key(&s) {
                        // A bare index variable as a value.
                        self.bump();
                    } else {
                        reads.push(self.access(arrays, loop_vars, dims)?);
                    }
                    want_operand = false;
                }
                Some(Spanned {
                    tok: Tok::Int(_), ..
                }) => {
                    self.bump();
                    want_operand = false;
                }
                Some(Spanned {
                    tok: Tok::Plus | Tok::Minus | Tok::Star | Tok::Slash,
                    ..
                }) => {
                    self.bump();
                    want_operand = true;
                }
                Some(Spanned {
                    tok: Tok::LParen, ..
                }) => {
                    self.bump();
                    self.rhs(arrays, loop_vars, dims, reads)?;
                    self.expect_tok(Tok::RParen, "`)`")?;
                    want_operand = false;
                }
                _ => break,
            }
        }
        Ok(())
    }
}

/// Parse a textual loop nest.
pub fn parse_loop_nest(src: &str) -> Result<LoopNest, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };

    // Loop headers.
    let mut loop_vars: HashMap<String, usize> = HashMap::new();
    let mut lowers = Vec::new();
    let mut uppers = Vec::new();
    while p.at_keyword("for") {
        p.expect_keyword("for")?;
        let (var, span) = p.expect_ident("a loop variable")?;
        if loop_vars.contains_key(&var) {
            return err_at(span, format!("duplicate loop variable `{var}`"));
        }
        loop_vars.insert(var, lowers.len());
        p.expect_tok(Tok::Assign, "`=`")?;
        let lo = p.expect_int("a lower bound")?;
        p.expect_keyword("to")?;
        let hi = p.expect_int("an upper bound")?;
        if p.at_keyword("do") {
            p.bump();
        }
        if lo > hi {
            return err_at(span, format!("empty loop range {lo}..{hi}"));
        }
        lowers.push(lo);
        uppers.push(hi);
    }
    if lowers.is_empty() {
        return err(1, 1, "expected at least one FOR header");
    }
    let dims = lowers.len();

    // Statements.
    let mut arrays: HashMap<String, ArrayId> = HashMap::new();
    let mut statements = Vec::new();
    while !p.at_keyword("endfor") {
        if p.peek().is_none() {
            let (line, col) = p.eof_pos();
            return err(
                line,
                col,
                "unexpected end of input: missing statements/ENDFOR",
            );
        }
        let write = p.access(&mut arrays, &loop_vars, dims)?;
        p.expect_tok(Tok::Assign, "`=`")?;
        let mut reads = Vec::new();
        p.rhs(&mut arrays, &loop_vars, dims, &mut reads)?;
        statements.push(Statement::new(write, reads));
    }
    if statements.is_empty() {
        let (line, col) = p
            .peek()
            .map(|s| (s.line, s.col))
            .unwrap_or_else(|| p.eof_pos());
        return err(line, col, "loop body has no statements");
    }

    // Matching ENDFORs.
    for _ in 0..dims {
        if !p.at_keyword("endfor") {
            let (line, col) = p
                .peek()
                .map(|s| (s.line, s.col))
                .unwrap_or_else(|| p.eof_pos());
            return err(line, col, format!("expected {dims} ENDFORs"));
        }
        p.bump();
    }
    if let Some(s) = p.peek() {
        return err_span(s.line, s.col, s.len, format!("trailing input: {:?}", s.tok));
    }

    let space = IterationSpace::new(lowers, uppers);
    // Semantic errors have no single offending token: span the nest's
    // first line.
    LoopNest::new(space, statements).map_err(|e: LoopNestError| ParseError {
        line: 1,
        col: 1,
        len: 1,
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependence::DependenceSet;

    const EXAMPLE_1: &str = "
        FOR i1 = 0 TO 9999 DO
          FOR i2 = 0 TO 999 DO
            A(i1, i2) = A(i1-1, i2-1) + A(i1-1, i2) + A(i1, i2-1)
          ENDFOR
        ENDFOR";

    #[test]
    fn parses_example_1() {
        let nest = parse_loop_nest(EXAMPLE_1).unwrap();
        assert_eq!(nest, LoopNest::example_1());
        let deps = nest.dependences().unwrap();
        let want: std::collections::BTreeSet<Vec<i64>> = DependenceSet::example_1()
            .iter()
            .map(|d| d.components().to_vec())
            .collect();
        let got: std::collections::BTreeSet<Vec<i64>> =
            deps.iter().map(|d| d.components().to_vec()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn parses_paper_3d_with_sqrt() {
        let src = "
            for i = 0 to 15
            for j = 0 to 15
            for k = 0 to 16383
              A(i, j, k) = sqrt(A(i-1, j, k)) + sqrt(A(i, j-1, k)) + sqrt(A(i, j, k-1))
            endfor
            endfor
            endfor";
        let nest = parse_loop_nest(src).unwrap();
        assert_eq!(nest, LoopNest::paper_3d(&[16, 16, 16384]));
    }

    #[test]
    fn multiple_statements_and_arrays() {
        let src = "
            FOR i = 0 TO 9 DO
              X(i) = Y(i-2) * 3
              Y(i) = X(i-1) + 1
            ENDFOR";
        let nest = parse_loop_nest(src).unwrap();
        assert_eq!(nest.statements().len(), 2);
        let deps = nest.dependences().unwrap();
        let got: std::collections::BTreeSet<Vec<i64>> =
            deps.iter().map(|d| d.components().to_vec()).collect();
        assert!(got.contains(&vec![1]));
        assert!(got.contains(&vec![2]));
    }

    #[test]
    fn square_brackets_and_semicolons() {
        let src = "
            for i = 0 to 4 do
            for j = 0 to 4 do
              B[i, j] = B[i-1, j] + B[i, j-1];
            endfor
            endfor";
        let nest = parse_loop_nest(src).unwrap();
        let deps = nest.dependences().unwrap();
        assert_eq!(deps.len(), 2);
    }

    #[test]
    fn comments_ignored() {
        let src = "
            FOR i = 0 TO 3 // outer
              A(i) = A(i-1) // flow dep
            ENDFOR";
        assert!(parse_loop_nest(src).is_ok());
    }

    #[test]
    fn negative_bounds() {
        let src = "FOR i = -5 TO 5\n A(i) = A(i-1)\nENDFOR";
        let nest = parse_loop_nest(src).unwrap();
        assert_eq!(nest.space().lower(), &[-5]);
        assert_eq!(nest.space().upper(), &[5]);
    }

    #[test]
    fn bare_index_variable_on_rhs() {
        let src = "FOR i = 0 TO 3\n A(i) = A(i-1) + i * 2\nENDFOR";
        let nest = parse_loop_nest(src).unwrap();
        assert_eq!(nest.dependences().unwrap().len(), 1);
    }

    #[test]
    fn error_unknown_variable() {
        let src = "FOR i = 0 TO 3\n A(q) = 1\nENDFOR";
        let e = parse_loop_nest(src).unwrap_err();
        assert!(e.message.contains("unknown index variable"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn error_non_uniform_access() {
        // j used in i's position.
        let src = "FOR i = 0 TO 3\nFOR j = 0 TO 3\n A(j, i) = 1\nENDFOR\nENDFOR";
        let e = parse_loop_nest(src).unwrap_err();
        assert!(e.message.contains("loop variable of that depth"), "{e}");
    }

    #[test]
    fn error_missing_endfor() {
        let src = "FOR i = 0 TO 3\n A(i) = A(i-1)";
        assert!(parse_loop_nest(src).is_err());
    }

    #[test]
    fn error_empty_range() {
        let src = "FOR i = 5 TO 2\n A(i) = 1\nENDFOR";
        let e = parse_loop_nest(src).unwrap_err();
        assert!(e.message.contains("empty loop range"), "{e}");
    }

    #[test]
    fn error_trailing_tokens() {
        let src = "FOR i = 0 TO 3\n A(i) = A(i-1)\nENDFOR garbage";
        let e = parse_loop_nest(src).unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn error_forward_dependence_propagates() {
        // The parser succeeds syntactically; dependence extraction fails.
        let src = "FOR i = 0 TO 3\n A(i) = A(i+1)\nENDFOR";
        let nest = parse_loop_nest(src).unwrap();
        assert!(nest.dependences().is_err());
    }

    #[test]
    fn error_duplicate_loop_var() {
        let src = "FOR i = 0 TO 3\nFOR i = 0 TO 3\n A(i, i) = 1\nENDFOR\nENDFOR";
        let e = parse_loop_nest(src).unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn error_position_reported() {
        let src = "FOR i = 0 TO 3\n A(i) = @\nENDFOR";
        let e = parse_loop_nest(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unexpected character"));
    }

    #[test]
    fn error_spans_cover_the_token() {
        // `qvar` sits at line 2, columns 4-7.
        let src = "FOR i = 0 TO 3\n A(qvar) = 1\nENDFOR";
        let e = parse_loop_nest(src).unwrap_err();
        assert_eq!((e.line, e.col, e.len), (2, 4, 4));
        assert_eq!(e.end_col(), 8);
        assert_eq!(e.to_string(), "2:4-7: unknown index variable `qvar`");
    }

    #[test]
    fn single_column_spans_display_as_a_point() {
        let src = "FOR i = 0 TO 3\n A(i) = @\nENDFOR";
        let e = parse_loop_nest(src).unwrap_err();
        assert_eq!(e.len, 1);
        assert!(
            e.to_string()
                .starts_with(&format!("{}:{}: ", e.line, e.col)),
            "{e}"
        );
    }

    #[test]
    fn eof_errors_point_past_the_last_token() {
        // Input ends after `A(i-1)` on line 2; the EOF error must
        // anchor there, not at 0:0.
        let src = "FOR i = 0 TO 3\n A(i) = A(i-1)";
        let e = parse_loop_nest(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 15);
        assert!(e.message.contains("end of input"), "{e}");
    }

    #[test]
    fn duplicate_loop_var_spans_the_variable() {
        let src = "FOR i = 0 TO 3\nFOR i = 0 TO 3\n A(i, i) = 1\nENDFOR\nENDFOR";
        let e = parse_loop_nest(src).unwrap_err();
        assert_eq!((e.line, e.col, e.len), (2, 5, 1));
    }

    #[test]
    fn nested_parens_in_rhs() {
        let src = "FOR i = 0 TO 3\n A(i) = (A(i-1) + 2) * (3 - A(i-2))\nENDFOR";
        let nest = parse_loop_nest(src).unwrap();
        assert_eq!(nest.dependences().unwrap().len(), 2);
    }

    #[test]
    fn end_to_end_parse_tile_schedule() {
        // Parse → dependences → tile → schedule: the full §3 pipeline
        // from text.
        let nest = parse_loop_nest(EXAMPLE_1).unwrap();
        let deps = nest.dependences().unwrap();
        let tiling = crate::tiling::Tiling::rectangular(&[10, 10]);
        assert!(tiling.is_legal(&deps));
        let machine = crate::machine::MachineParams::example_1();
        let r = crate::schedule::NonOverlapSchedule::with_mapping(2, 0).analyze(
            &tiling,
            &deps,
            nest.space(),
            &machine,
        );
        assert_eq!(r.schedule_length, 1099);
    }
}
