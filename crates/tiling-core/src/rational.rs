//! Exact rational arithmetic.
//!
//! The tiling matrix `H` is the inverse of the integer side matrix `P`
//! (see §2.3 of the paper), and is in general *not* integral: for a square
//! tile of side 10, `H = diag(1/10, 1/10)`. Legality checks (`HD ≥ 0`),
//! tile-coordinate computation (`⌊Hj⌋`) and the communication-volume
//! formulas (1)–(2) all need exact arithmetic on these entries — floating
//! point would mis-round points lying exactly on tile boundaries.
//!
//! [`Rational`] is a reduced `num/den` pair over `i128`. Tiling matrices
//! for real loop nests have tiny entries (dimension ≤ 4, sides ≤ a few
//! thousand), so `i128` intermediates never overflow in practice; debug
//! builds still carry checked arithmetic through the usual operators.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Greatest common divisor (always non-negative).
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple (non-negative; `lcm(0, x) = 0`).
pub fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        0
    } else {
        (a / gcd(a, b)).abs() * b.abs()
    }
}

/// An exact rational number `num/den`, always kept in lowest terms with
/// `den > 0`. Zero is represented canonically as `0/1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Create `num/den`, reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// The integer `n` as a rational.
    pub const fn from_int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub const fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub const fn den(&self) -> i128 {
        self.den
    }

    /// True iff the value is an integer.
    pub const fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True iff the value is zero.
    pub const fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True iff the value is strictly positive.
    pub const fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// True iff the value is strictly negative.
    pub const fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Floor to the nearest integer towards −∞.
    ///
    /// This is the `⌊·⌋` used by the supernode transform `⌊Hj⌋`: it must
    /// round towards −∞ (not towards zero) so that tiles partition the
    /// index space correctly for negative coordinates too.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling to the nearest integer towards +∞.
    pub fn ceil(&self) -> i128 {
        -(-*self).floor()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Lossy conversion to `f64`, for reporting only.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n as i128)
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::from_int(n)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(12, -18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(7, 13), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(-4, 6), 12);
        assert_eq!(lcm(1, 1), 1);
    }

    #[test]
    fn construction_reduces() {
        let r = Rational::new(6, 8);
        assert_eq!(r.num(), 3);
        assert_eq!(r.den(), 4);
    }

    #[test]
    fn construction_normalizes_sign() {
        let r = Rational::new(3, -4);
        assert_eq!(r.num(), -3);
        assert_eq!(r.den(), 4);
        let r = Rational::new(-3, -4);
        assert_eq!(r.num(), 3);
        assert_eq!(r.den(), 4);
    }

    #[test]
    fn zero_is_canonical() {
        let r = Rational::new(0, -17);
        assert_eq!(r, Rational::ZERO);
        assert_eq!(r.den(), 1);
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn floor_rounds_towards_negative_infinity() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-1, 10).floor(), -1);
        assert_eq!(Rational::new(6, 3).floor(), 2);
        assert_eq!(Rational::ZERO.floor(), 0);
    }

    #[test]
    fn ceil_rounds_towards_positive_infinity() {
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::new(6, 3).ceil(), 2);
        assert_eq!(Rational::new(1, 10).ceil(), 1);
    }

    #[test]
    fn ordering_crosses_denominators() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 3) > Rational::new(-1, 2));
        assert!(Rational::new(2, 4) == Rational::new(1, 2));
    }

    #[test]
    fn recip() {
        assert_eq!(Rational::new(2, 3).recip(), Rational::new(3, 2));
        assert_eq!(Rational::new(-2, 3).recip(), Rational::new(-3, 2));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn predicates() {
        assert!(Rational::new(1, 2).is_positive());
        assert!(Rational::new(-1, 2).is_negative());
        assert!(Rational::from_int(5).is_integer());
        assert!(!Rational::new(1, 2).is_integer());
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 4).to_string(), "3/4");
        assert_eq!(Rational::from_int(-7).to_string(), "-7");
    }

    #[test]
    fn to_f64() {
        assert!((Rational::new(1, 4).to_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn floor_ceil_consistency_on_integers() {
        for n in -10..10 {
            let r = Rational::from_int(n);
            assert_eq!(r.floor(), n);
            assert_eq!(r.ceil(), n);
        }
    }
}
