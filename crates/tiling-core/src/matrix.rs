//! Small dense integer and rational matrices.
//!
//! Tiling theory needs exact linear algebra on tiny square matrices
//! (`n` = loop-nest depth, almost always 2–4): the tile side matrix `P`
//! is integral, the tiling matrix `H = P⁻¹` is rational, determinants
//! give tile volumes (`V_comp = det P`, §2.4), and legality is the sign
//! condition `HD ≥ 0` on a rational matrix product.
//!
//! Everything here is exact: determinants use fraction-free Bareiss
//! elimination over `i128`, inverses go through the adjugate so the
//! result is an exact [`RatMatrix`].

use crate::rational::Rational;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` integer matrix.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IntMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IntMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix must be non-empty");
        IntMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = IntMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Build from a row-major nested slice.
    ///
    /// # Panics
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(rows: &[&[i64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        IntMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build a square diagonal matrix from its diagonal entries.
    pub fn diagonal(diag: &[i64]) -> Self {
        let n = diag.len();
        let mut m = IntMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Build from column vectors (each of equal length).
    pub fn from_cols(cols: &[Vec<i64>]) -> Self {
        assert!(!cols.is_empty(), "matrix must have at least one column");
        let rows = cols[0].len();
        assert!(rows > 0, "columns must be non-empty");
        let mut m = IntMatrix::zeros(rows, cols.len());
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), rows, "ragged columns");
            for (i, &v) in c.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True iff the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The `i`-th row as a slice.
    pub fn row(&self, i: usize) -> &[i64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The `j`-th column as an owned vector.
    pub fn col(&self, j: usize) -> Vec<i64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> IntMatrix {
        let mut t = IntMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix × matrix product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul(&self, rhs: &IntMatrix) -> IntMatrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in matrix product");
        let mut out = IntMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix × vector product.
    pub fn mul_vec(&self, v: &[i64]) -> Vec<i64> {
        assert_eq!(self.cols, v.len(), "shape mismatch in mat-vec product");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Exact determinant by fraction-free Bareiss elimination over `i128`.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn det(&self) -> i64 {
        assert!(self.is_square(), "determinant of non-square matrix");
        let n = self.rows;
        let mut a: Vec<i128> = self.data.iter().map(|&x| x as i128).collect();
        let idx = |i: usize, j: usize| i * n + j;
        let mut sign: i128 = 1;
        let mut prev: i128 = 1;
        for k in 0..n.saturating_sub(1) {
            if a[idx(k, k)] == 0 {
                // Pivot: find a row below with non-zero entry in column k.
                let Some(p) = (k + 1..n).find(|&r| a[idx(r, k)] != 0) else {
                    return 0;
                };
                for j in 0..n {
                    a.swap(idx(k, j), idx(p, j));
                }
                sign = -sign;
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let v = a[idx(i, j)] * a[idx(k, k)] - a[idx(i, k)] * a[idx(k, j)];
                    a[idx(i, j)] = v / prev;
                }
                a[idx(i, k)] = 0;
            }
            prev = a[idx(k, k)];
        }
        let d = sign * a[idx(n - 1, n - 1)];
        i64::try_from(d).expect("determinant overflows i64")
    }

    /// Minor: the matrix with row `i` and column `j` removed.
    fn minor(&self, i: usize, j: usize) -> IntMatrix {
        assert!(self.rows > 1 && self.cols > 1);
        let mut m = IntMatrix::zeros(self.rows - 1, self.cols - 1);
        let mut r = 0;
        for ri in 0..self.rows {
            if ri == i {
                continue;
            }
            let mut c = 0;
            for cj in 0..self.cols {
                if cj == j {
                    continue;
                }
                m[(r, c)] = self[(ri, cj)];
                c += 1;
            }
            r += 1;
        }
        m
    }

    /// Adjugate (classical adjoint): `adj(A)·A = det(A)·I`.
    pub fn adjugate(&self) -> IntMatrix {
        assert!(self.is_square(), "adjugate of non-square matrix");
        let n = self.rows;
        if n == 1 {
            return IntMatrix::identity(1);
        }
        let mut adj = IntMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let cof = self.minor(i, j).det();
                let sign = if (i + j) % 2 == 0 { 1 } else { -1 };
                // Adjugate is the *transpose* of the cofactor matrix.
                adj[(j, i)] = sign * cof;
            }
        }
        adj
    }

    /// Exact inverse as a rational matrix.
    ///
    /// # Panics
    /// Panics if the matrix is singular or non-square.
    pub fn inverse(&self) -> RatMatrix {
        let d = self.det();
        assert!(d != 0, "inverse of singular matrix");
        let adj = self.adjugate();
        let mut out = RatMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] = Rational::new(adj[(i, j)] as i128, d as i128);
            }
        }
        out
    }

    /// Lift to a rational matrix.
    pub fn to_rational(&self) -> RatMatrix {
        let mut out = RatMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] = Rational::from_int(self[(i, j)] as i128);
            }
        }
        out
    }

    /// True iff every entry is ≥ 0.
    pub fn is_nonnegative(&self) -> bool {
        self.data.iter().all(|&x| x >= 0)
    }
}

impl Index<(usize, usize)> for IntMatrix {
    type Output = i64;
    fn index(&self, (i, j): (usize, usize)) -> &i64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for IntMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for IntMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IntMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

/// A dense row-major matrix of exact [`Rational`] entries.
#[derive(Clone, PartialEq, Eq)]
pub struct RatMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl RatMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix must be non-empty");
        RatMatrix {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = RatMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rational::ONE;
        }
        m
    }

    /// Build from a row-major nested slice of rationals.
    pub fn from_rows(rows: &[&[Rational]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        RatMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `i`-th row as a slice.
    pub fn row(&self, i: usize) -> &[Rational] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix × matrix product (with an integer matrix on the right).
    pub fn mul_int(&self, rhs: &IntMatrix) -> RatMatrix {
        assert_eq!(self.cols, rhs.rows(), "shape mismatch in matrix product");
        let mut out = RatMatrix::zeros(self.rows, rhs.cols());
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols() {
                    let add = a * Rational::from_int(rhs[(k, j)] as i128);
                    out[(i, j)] += add;
                }
            }
        }
        out
    }

    /// Matrix × rational matrix product.
    pub fn mul(&self, rhs: &RatMatrix) -> RatMatrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in matrix product");
        let mut out = RatMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let add = a * rhs[(k, j)];
                    out[(i, j)] += add;
                }
            }
        }
        out
    }

    /// Matrix × integer vector product, giving exact rational coordinates.
    pub fn mul_vec(&self, v: &[i64]) -> Vec<Rational> {
        assert_eq!(self.cols, v.len(), "shape mismatch in mat-vec product");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .fold(Rational::ZERO, |acc, (&a, &b)| {
                        acc + a * Rational::from_int(b as i128)
                    })
            })
            .collect()
    }

    /// Exact determinant (Laplace expansion on a common-denominator lift).
    pub fn det(&self) -> Rational {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        // Clear denominators: A = N / d where N integral (per-entry scaling
        // by the lcm of all denominators), then det A = det N / d^n.
        let mut l: i128 = 1;
        for r in &self.data {
            l = crate::rational::lcm(l, r.den());
        }
        let n = self.rows;
        let mut m = IntMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let r = self[(i, j)];
                let scaled = r.num() * (l / r.den());
                m[(i, j)] = i64::try_from(scaled).expect("entry overflows i64 after scaling");
            }
        }
        let dn = Rational::from_int(m.det() as i128);
        let mut denom = Rational::ONE;
        for _ in 0..n {
            denom = denom * Rational::from_int(l);
        }
        dn / denom
    }

    /// True iff every entry is ≥ 0. This is the tiling legality condition
    /// when applied to `H·D` (§2.3).
    pub fn is_nonnegative(&self) -> bool {
        self.data.iter().all(|r| !r.is_negative())
    }

    /// Element-wise floor, producing an integer matrix.
    pub fn floor(&self) -> IntMatrix {
        let mut out = IntMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] = i64::try_from(self[(i, j)].floor()).expect("floor overflows i64");
            }
        }
        out
    }
}

impl Index<(usize, usize)> for RatMatrix {
    type Output = Rational;
    fn index(&self, (i, j): (usize, usize)) -> &Rational {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RatMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rational {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for RatMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RatMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let i3 = IntMatrix::identity(3);
        assert_eq!(i3.det(), 1);
        let m = IntMatrix::from_rows(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 10]]);
        assert_eq!(i3.mul(&m), m);
        assert_eq!(m.mul(&i3), m);
    }

    #[test]
    fn det_2x2() {
        let m = IntMatrix::from_rows(&[&[3, 1], &[2, 4]]);
        assert_eq!(m.det(), 10);
    }

    #[test]
    fn det_3x3() {
        let m = IntMatrix::from_rows(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 10]]);
        assert_eq!(m.det(), -3);
    }

    #[test]
    fn det_singular() {
        let m = IntMatrix::from_rows(&[&[1, 2], &[2, 4]]);
        assert_eq!(m.det(), 0);
    }

    #[test]
    fn det_with_zero_pivot_needs_row_swap() {
        let m = IntMatrix::from_rows(&[&[0, 1], &[1, 0]]);
        assert_eq!(m.det(), -1);
        let m = IntMatrix::from_rows(&[&[0, 0, 1], &[0, 1, 0], &[1, 0, 0]]);
        assert_eq!(m.det(), -1);
    }

    #[test]
    fn det_diagonal() {
        let m = IntMatrix::diagonal(&[10, 10, 444]);
        assert_eq!(m.det(), 44_400);
    }

    #[test]
    fn adjugate_identity_relation() {
        let m = IntMatrix::from_rows(&[&[2, 1, 0], &[1, 3, 1], &[0, 1, 2]]);
        let adj = m.adjugate();
        let prod = adj.mul(&m);
        let d = m.det();
        let expected = {
            let mut e = IntMatrix::zeros(3, 3);
            for i in 0..3 {
                e[(i, i)] = d;
            }
            e
        };
        assert_eq!(prod, expected);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = IntMatrix::from_rows(&[&[2, 1], &[1, 1]]);
        let inv = m.inverse();
        let prod = inv.mul_int(&m);
        assert_eq!(prod, RatMatrix::identity(2));
    }

    #[test]
    fn inverse_of_diagonal_tile_matrix() {
        // P = diag(10,10) ⇒ H = diag(1/10,1/10), the paper's Example 1 tiling.
        let p = IntMatrix::diagonal(&[10, 10]);
        let h = p.inverse();
        assert_eq!(h[(0, 0)], Rational::new(1, 10));
        assert_eq!(h[(1, 1)], Rational::new(1, 10));
        assert_eq!(h[(0, 1)], Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn inverse_singular_panics() {
        let m = IntMatrix::from_rows(&[&[1, 2], &[2, 4]]);
        let _ = m.inverse();
    }

    #[test]
    fn mul_vec_int() {
        let m = IntMatrix::from_rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(m.mul_vec(&[5, 6]), vec![17, 39]);
    }

    #[test]
    fn mul_vec_rational_floor() {
        let p = IntMatrix::diagonal(&[10, 10]);
        let h = p.inverse();
        // Point (25, -3): tile coords = (⌊2.5⌋, ⌊-0.3⌋) = (2, -1).
        let hv = h.mul_vec(&[25, -3]);
        assert_eq!(hv[0].floor(), 2);
        assert_eq!(hv[1].floor(), -1);
    }

    #[test]
    fn transpose() {
        let m = IntMatrix::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(0, 1)], 4);
        assert_eq!(t[(2, 0)], 3);
    }

    #[test]
    fn from_cols_matches_from_rows() {
        let a = IntMatrix::from_cols(&[vec![1, 3], vec![2, 4]]);
        let b = IntMatrix::from_rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(a, b);
    }

    #[test]
    fn rat_det() {
        let h = IntMatrix::from_rows(&[&[3, 1], &[1, 2]]).inverse();
        // det(H) = 1/det(P) = 1/5.
        assert_eq!(h.det(), Rational::new(1, 5));
    }

    #[test]
    fn rat_nonnegative() {
        let m = RatMatrix::from_rows(&[&[Rational::new(1, 2), Rational::ZERO]]);
        assert!(m.is_nonnegative());
        let m = RatMatrix::from_rows(&[&[Rational::new(-1, 2)]]);
        assert!(!m.is_nonnegative());
    }

    #[test]
    fn rat_floor_matrix() {
        let p = IntMatrix::diagonal(&[4, 4]);
        let h = p.inverse();
        let d = IntMatrix::from_rows(&[&[1, 1, 0], &[1, 0, 1]]); // columns are deps
        let hd = h.mul_int(&d);
        let f = hd.floor();
        // All deps smaller than the tile ⇒ ⌊HD⌋ = 0.
        assert_eq!(f, IntMatrix::zeros(2, 3));
    }

    #[test]
    fn row_col_access() {
        let m = IntMatrix::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(m.row(1), &[4, 5, 6]);
        assert_eq!(m.col(2), vec![3, 6]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = IntMatrix::identity(2);
        let _ = m[(2, 0)];
    }
}
