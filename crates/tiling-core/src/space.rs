//! Rectangular iteration spaces `J^n` (§2.2 of the paper).
//!
//! The paper's algorithm model restricts iteration sets to multidimensional
//! rectangles: `J^n = { j | l_i ≤ j_i ≤ u_i }` with constant integer bounds.
//! [`IterationSpace`] captures exactly that, plus iteration utilities used
//! by the brute-force oracles in tests (full point enumeration) and by the
//! tiled-space construction.

use std::fmt;

/// A point of an `n`-dimensional integer space.
pub type Point = Vec<i64>;

/// A rectangular (parallelepiped) iteration space with inclusive bounds.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IterationSpace {
    lower: Vec<i64>,
    upper: Vec<i64>,
}

impl IterationSpace {
    /// Create a space from inclusive lower and upper bounds.
    ///
    /// # Panics
    /// Panics if the bound vectors differ in length, are empty, or if any
    /// `lower[i] > upper[i]` (empty spaces are not representable — the
    /// paper's loops always execute at least one iteration per dimension).
    pub fn new(lower: Vec<i64>, upper: Vec<i64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "bound arity mismatch");
        assert!(!lower.is_empty(), "iteration space must have ≥ 1 dimension");
        for (i, (&l, &u)) in lower.iter().zip(&upper).enumerate() {
            assert!(l <= u, "empty extent in dimension {i}: {l} > {u}");
        }
        IterationSpace { lower, upper }
    }

    /// A space `[0, extent_i - 1]` in every dimension — the common case for
    /// loops normalized to start at zero.
    ///
    /// # Panics
    /// Panics if any extent is zero or negative.
    pub fn from_extents(extents: &[i64]) -> Self {
        let lower = vec![0; extents.len()];
        let upper = extents
            .iter()
            .map(|&e| {
                assert!(e > 0, "extent must be positive");
                e - 1
            })
            .collect();
        IterationSpace::new(lower, upper)
    }

    /// Dimensionality `n`.
    pub fn dims(&self) -> usize {
        self.lower.len()
    }

    /// Inclusive lower bounds `l`.
    pub fn lower(&self) -> &[i64] {
        &self.lower
    }

    /// Inclusive upper bounds `u`.
    pub fn upper(&self) -> &[i64] {
        &self.upper
    }

    /// Extent (number of points) along dimension `d`.
    pub fn extent(&self, d: usize) -> i64 {
        self.upper[d] - self.lower[d] + 1
    }

    /// All extents.
    pub fn extents(&self) -> Vec<i64> {
        (0..self.dims()).map(|d| self.extent(d)).collect()
    }

    /// Total number of points (`Π extents`), saturating at `u64::MAX`.
    pub fn volume(&self) -> u64 {
        self.extents()
            .iter()
            .fold(1u64, |acc, &e| acc.saturating_mul(e as u64))
    }

    /// The dimension with the largest extent — the paper maps all tiles
    /// along this dimension to the same processor (§4). Ties resolve to the
    /// lowest index, matching the paper's choice of the k axis only because
    /// its extent strictly dominates in all three experiments.
    pub fn longest_dimension(&self) -> usize {
        let mut best = 0;
        for d in 1..self.dims() {
            if self.extent(d) > self.extent(best) {
                best = d;
            }
        }
        best
    }

    /// True iff `p` lies inside the space.
    pub fn contains(&self, p: &[i64]) -> bool {
        p.len() == self.dims()
            && p.iter()
                .zip(self.lower.iter().zip(&self.upper))
                .all(|(&x, (&l, &u))| l <= x && x <= u)
    }

    /// Lexicographic iterator over every point. Intended for tests and
    /// small oracles — real executions go through tiles, never points.
    pub fn points(&self) -> PointIter {
        PointIter {
            space: self.clone(),
            next: Some(self.lower.clone()),
        }
    }

    /// The corner points of the rectangle (2^n of them).
    pub fn corners(&self) -> Vec<Point> {
        let n = self.dims();
        (0..(1usize << n))
            .map(|mask| {
                (0..n)
                    .map(|d| {
                        if mask & (1 << d) != 0 {
                            self.upper[d]
                        } else {
                            self.lower[d]
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

impl fmt::Debug for IterationSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J^{}{{", self.dims())?;
        for d in 0..self.dims() {
            if d > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}..={}", self.lower[d], self.upper[d])?;
        }
        write!(f, "}}")
    }
}

/// Lexicographic point iterator (last dimension fastest).
pub struct PointIter {
    space: IterationSpace,
    next: Option<Point>,
}

impl Iterator for PointIter {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        let cur = self.next.take()?;
        // Advance like an odometer from the last dimension.
        let mut succ = cur.clone();
        let mut d = self.space.dims();
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            if succ[d] < self.space.upper[d] {
                succ[d] += 1;
                self.next = Some(succ);
                break;
            }
            succ[d] = self.space.lower[d];
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_extents_zero_based() {
        let s = IterationSpace::from_extents(&[3, 5]);
        assert_eq!(s.lower(), &[0, 0]);
        assert_eq!(s.upper(), &[2, 4]);
        assert_eq!(s.volume(), 15);
    }

    #[test]
    fn explicit_bounds() {
        let s = IterationSpace::new(vec![-2, 1], vec![2, 1]);
        assert_eq!(s.extent(0), 5);
        assert_eq!(s.extent(1), 1);
        assert_eq!(s.volume(), 5);
    }

    #[test]
    #[should_panic(expected = "empty extent")]
    fn empty_extent_panics() {
        let _ = IterationSpace::new(vec![3], vec![2]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = IterationSpace::new(vec![0, 0], vec![5]);
    }

    #[test]
    fn longest_dimension_paper_experiments() {
        // All three spaces in §5 map along k (dimension 2).
        assert_eq!(
            IterationSpace::from_extents(&[16, 16, 16384]).longest_dimension(),
            2
        );
        assert_eq!(
            IterationSpace::from_extents(&[16, 16, 32768]).longest_dimension(),
            2
        );
        assert_eq!(
            IterationSpace::from_extents(&[32, 32, 4096]).longest_dimension(),
            2
        );
    }

    #[test]
    fn longest_dimension_tie_breaks_low() {
        assert_eq!(IterationSpace::from_extents(&[7, 7]).longest_dimension(), 0);
    }

    #[test]
    fn contains() {
        let s = IterationSpace::from_extents(&[4, 4]);
        assert!(s.contains(&[0, 0]));
        assert!(s.contains(&[3, 3]));
        assert!(!s.contains(&[4, 0]));
        assert!(!s.contains(&[0, -1]));
        assert!(!s.contains(&[0]));
    }

    #[test]
    fn points_enumerates_lexicographically() {
        let s = IterationSpace::from_extents(&[2, 3]);
        let pts: Vec<_> = s.points().collect();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn points_count_matches_volume() {
        let s = IterationSpace::new(vec![-1, 2, 0], vec![1, 3, 1]);
        assert_eq!(s.points().count() as u64, s.volume());
    }

    #[test]
    fn corners_cardinality() {
        let s = IterationSpace::from_extents(&[2, 2, 2]);
        let c = s.corners();
        assert_eq!(c.len(), 8);
        assert!(c.contains(&vec![0, 0, 0]));
        assert!(c.contains(&vec![1, 1, 1]));
    }

    #[test]
    fn single_point_space() {
        let s = IterationSpace::new(vec![5], vec![5]);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.points().collect::<Vec<_>>(), vec![vec![5]]);
    }

    #[test]
    fn debug_format() {
        let s = IterationSpace::from_extents(&[2, 3]);
        assert_eq!(format!("{s:?}"), "J^2{0..=1, 0..=2}");
    }
}
