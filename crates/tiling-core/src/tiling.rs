//! The supernode (tiling) transformation (§2.3).
//!
//! A tiling is defined dually by the integer matrix `P` whose *columns*
//! are the tile side vectors, and the rational matrix `H = P⁻¹` whose
//! rows are normal to the tile-boundary hyperplane families. The transform
//!
//! ```text
//! r(j) = ( ⌊Hj⌋ , j − P·⌊Hj⌋ )
//! ```
//!
//! maps an index point to its *tile coordinates* and its *offset within
//! the tile*. A tiling is legal for a dependence set `D` iff `HD ≥ 0`
//! (tiles stay atomic, execution order is preserved — Irigoin & Triolet,
//! Ramanujam & Sadayappan); the paper additionally assumes `⌊HD⌋ = 0`,
//! i.e. every dependence fits inside one tile, so the tile dependence
//! matrix `D^S` contains only 0/1 entries and every tile talks only to
//! its nearest neighbor in each dimension.

use crate::dependence::{Dependence, DependenceSet};
use crate::matrix::{IntMatrix, RatMatrix};
use crate::space::{IterationSpace, Point};
use std::fmt;

/// Errors constructing or applying a tiling.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TilingError {
    /// `P` is not square.
    NotSquare,
    /// `P` is singular (zero-volume tiles).
    Singular,
    /// The tiling violates `HD ≥ 0` for the given dependence set.
    Illegal {
        /// Index of the offending dependence vector in the set.
        dep_index: usize,
    },
    /// A dependence does not fit within a single tile (`⌊Hd⌋ ≠ 0`).
    DependenceNotContained {
        /// Index of the offending dependence vector in the set.
        dep_index: usize,
    },
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilingError::NotSquare => write!(f, "tile side matrix P must be square"),
            TilingError::Singular => write!(f, "tile side matrix P is singular"),
            TilingError::Illegal { dep_index } => {
                write!(f, "tiling violates HD ≥ 0 for dependence #{dep_index}")
            }
            TilingError::DependenceNotContained { dep_index } => {
                write!(f, "dependence #{dep_index} does not fit inside a tile")
            }
        }
    }
}

impl std::error::Error for TilingError {}

/// A supernode transformation, i.e. the pair `(P, H = P⁻¹)`.
#[derive(Clone, PartialEq)]
pub struct Tiling {
    p: IntMatrix,
    h: RatMatrix,
    /// Fast-path flag: `P` diagonal with positive entries (rectangular
    /// tiles aligned with the axes — the shape the paper's experiments use).
    rect_sides: Option<Vec<i64>>,
}

impl Tiling {
    /// Build a tiling from the side matrix `P` (columns = tile sides).
    pub fn from_side_matrix(p: IntMatrix) -> Result<Self, TilingError> {
        if !p.is_square() {
            return Err(TilingError::NotSquare);
        }
        if p.det() == 0 {
            return Err(TilingError::Singular);
        }
        let h = p.inverse();
        let n = p.rows();
        let mut rect_sides = Some(Vec::with_capacity(n));
        'outer: for i in 0..n {
            for j in 0..n {
                let v = p[(i, j)];
                if i == j {
                    if v <= 0 {
                        rect_sides = None;
                        break 'outer;
                    }
                    if let Some(s) = rect_sides.as_mut() {
                        s.push(v);
                    }
                } else if v != 0 {
                    rect_sides = None;
                    break 'outer;
                }
            }
        }
        Ok(Tiling { p, h, rect_sides })
    }

    /// Axis-aligned rectangular tiles with the given (positive) sides.
    ///
    /// # Panics
    /// Panics if any side is not positive.
    pub fn rectangular(sides: &[i64]) -> Self {
        assert!(sides.iter().all(|&s| s > 0), "tile sides must be positive");
        Tiling::from_side_matrix(IntMatrix::diagonal(sides)).expect("diagonal P is non-singular")
    }

    /// Dimensionality `n`.
    pub fn dims(&self) -> usize {
        self.p.rows()
    }

    /// The side matrix `P` (columns are tile side vectors).
    pub fn p(&self) -> &IntMatrix {
        &self.p
    }

    /// The tiling matrix `H = P⁻¹` (rows normal to tile boundaries).
    pub fn h(&self) -> &RatMatrix {
        &self.h
    }

    /// If the tiling is axis-aligned rectangular, its sides.
    pub fn rectangular_sides(&self) -> Option<&[i64]> {
        self.rect_sides.as_deref()
    }

    /// Tile volume `g = |det P|` — the computation cost `V_comp` of one
    /// tile in iteration points (§2.4).
    pub fn volume(&self) -> i64 {
        self.p.det().abs()
    }

    /// Tile coordinates `⌊Hj⌋` of index point `j`.
    pub fn tile_of(&self, j: &[i64]) -> Point {
        if let Some(sides) = &self.rect_sides {
            return j
                .iter()
                .zip(sides)
                .map(|(&x, &s)| x.div_euclid(s))
                .collect();
        }
        self.h
            .mul_vec(j)
            .into_iter()
            .map(|r| i64::try_from(r.floor()).expect("tile coordinate overflows i64"))
            .collect()
    }

    /// Offset of `j` within its tile: `j − P·⌊Hj⌋`.
    pub fn offset_of(&self, j: &[i64]) -> Point {
        let tile = self.tile_of(j);
        let origin = self.p.mul_vec(&tile);
        j.iter().zip(&origin).map(|(&a, &b)| a - b).collect()
    }

    /// The full supernode transform `r(j) = (tile, offset)`.
    pub fn transform(&self, j: &[i64]) -> (Point, Point) {
        let tile = self.tile_of(j);
        let origin = self.p.mul_vec(&tile);
        let offset = j.iter().zip(&origin).map(|(&a, &b)| a - b).collect();
        (tile, offset)
    }

    /// Inverse of [`Self::transform`]: `j = P·tile + offset`.
    pub fn reconstruct(&self, tile: &[i64], offset: &[i64]) -> Point {
        let origin = self.p.mul_vec(tile);
        origin.iter().zip(offset).map(|(&a, &b)| a + b).collect()
    }

    /// Legality: `HD ≥ 0` (§2.3). Tiles are atomic and deadlock-free iff
    /// every dependence has non-negative components in tile coordinates.
    pub fn is_legal(&self, deps: &DependenceSet) -> bool {
        self.check_legal(deps).is_ok()
    }

    /// Like [`Self::is_legal`] but reporting the first offending vector.
    pub fn check_legal(&self, deps: &DependenceSet) -> Result<(), TilingError> {
        for (idx, d) in deps.iter().enumerate() {
            let hd = self.h.mul_vec(d.components());
            if hd.iter().any(|r| r.is_negative()) {
                return Err(TilingError::Illegal { dep_index: idx });
            }
        }
        Ok(())
    }

    /// The paper's containment assumption: `⌊Hd⌋ = 0` for every `d ∈ D`
    /// (every dependence vector fits strictly inside one tile), so `D^S`
    /// has only 0/1 entries.
    pub fn contains_dependences(&self, deps: &DependenceSet) -> bool {
        self.check_contains(deps).is_ok()
    }

    /// Like [`Self::contains_dependences`] with error detail.
    pub fn check_contains(&self, deps: &DependenceSet) -> Result<(), TilingError> {
        self.check_legal(deps)?;
        for (idx, d) in deps.iter().enumerate() {
            let hd = self.h.mul_vec(d.components());
            if hd.iter().any(|r| r.floor() != 0) {
                return Err(TilingError::DependenceNotContained { dep_index: idx });
            }
        }
        Ok(())
    }

    /// Enumerate the fundamental domain: all integer points `j0` with
    /// `⌊H j0⌋ = 0` (the tile at the origin). There are exactly
    /// `|det P|` of them.
    pub fn fundamental_domain(&self) -> Vec<Point> {
        if let Some(sides) = &self.rect_sides {
            let space =
                IterationSpace::new(vec![0; sides.len()], sides.iter().map(|&s| s - 1).collect());
            return space.points().collect();
        }
        // General case: scan the bounding box of the parallelepiped
        // P·[0,1)^n and keep points whose tile is the origin tile.
        let n = self.dims();
        let unit = IterationSpace::new(vec![0; n], vec![1; n]);
        let mut lo = vec![i64::MAX; n];
        let mut hi = vec![i64::MIN; n];
        for corner in unit.corners() {
            let v = self.p.mul_vec(&corner);
            for d in 0..n {
                lo[d] = lo[d].min(v[d]);
                hi[d] = hi[d].max(v[d]);
            }
        }
        let bbox = IterationSpace::new(lo, hi);
        let mut pts = Vec::with_capacity(self.volume() as usize);
        for j in bbox.points() {
            if self.tile_of(&j).iter().all(|&c| c == 0) {
                pts.push(j);
            }
        }
        debug_assert_eq!(pts.len() as i64, self.volume());
        pts
    }

    /// The tile dependence set `D^S` (§2.3):
    /// `D^S = { ⌊H(j0 + d)⌋ : d ∈ D, j0 in the origin tile }`, with the
    /// zero vector (tile-internal flow) removed and duplicates merged.
    ///
    /// Under the containment assumption the result has only 0/1 entries.
    pub fn tile_dependences(&self, deps: &DependenceSet) -> DependenceSet {
        let n = self.dims();
        let mut out: std::collections::BTreeSet<Vec<i64>> = Default::default();
        if let Some(sides) = &self.rect_sides {
            // Rectangular fast path: a dependence d ≥ 0 crossing the tile
            // boundary in a subset S of the dimensions where d_i > 0 (or
            // |d_i| ≥ 1 generally) yields the indicator vector of S. With
            // d contained in a tile (|d_i| < side_i), every non-empty
            // subset of supp(d) is realized by some j0 near the boundary.
            for d in deps.iter() {
                let c = d.components();
                // Dimensions along which the dependence can spill forward.
                let supp: Vec<usize> = (0..n).filter(|&i| c[i] > 0).collect();
                // Verify containment for the fast path; fall back otherwise.
                if c.iter().zip(sides).any(|(&x, &s)| x.abs() >= s) || c.iter().any(|&x| x < 0) {
                    return self.tile_dependences_generic(deps);
                }
                for mask in 1..(1usize << supp.len()) {
                    let mut v = vec![0i64; n];
                    for (bit, &dim) in supp.iter().enumerate() {
                        if mask & (1 << bit) != 0 {
                            v[dim] = 1;
                        }
                    }
                    out.insert(v);
                }
            }
        } else {
            return self.tile_dependences_generic(deps);
        }
        let mut set = DependenceSet::new(n);
        for v in out {
            set.push(Dependence::new(v));
        }
        set
    }

    /// Generic (enumeration-based) `D^S`, valid for any legal tiling.
    pub fn tile_dependences_generic(&self, deps: &DependenceSet) -> DependenceSet {
        let n = self.dims();
        let mut out: std::collections::BTreeSet<Vec<i64>> = Default::default();
        let domain = self.fundamental_domain();
        for d in deps.iter() {
            for j0 in &domain {
                let shifted: Vec<i64> = j0
                    .iter()
                    .zip(d.components())
                    .map(|(&a, &b)| a + b)
                    .collect();
                let t = self.tile_of(&shifted);
                if t.iter().any(|&c| c != 0) {
                    out.insert(t);
                }
            }
        }
        let mut set = DependenceSet::new(n);
        for v in out {
            set.push(Dependence::new(v));
        }
        set
    }

    /// The tiled space `J^S = { ⌊Hj⌋ : j ∈ J^n }` as a rectangular space.
    ///
    /// For axis-aligned rectangular tilings of rectangular iteration
    /// spaces this is exact. For general tilings the rectangle is the
    /// bounding box of the image (some corner tiles may be empty); use
    /// [`Self::tile_is_nonempty`] to filter.
    pub fn tiled_space(&self, space: &IterationSpace) -> IterationSpace {
        assert_eq!(space.dims(), self.dims(), "space arity mismatch");
        if self.rect_sides.is_some() {
            let lo = self.tile_of(space.lower());
            let hi = self.tile_of(space.upper());
            return IterationSpace::new(lo, hi);
        }
        let n = self.dims();
        let mut lo = vec![i64::MAX; n];
        let mut hi = vec![i64::MIN; n];
        for corner in space.corners() {
            let t = self.tile_of(&corner);
            for d in 0..n {
                lo[d] = lo[d].min(t[d]);
                hi[d] = hi[d].max(t[d]);
            }
        }
        IterationSpace::new(lo, hi)
    }

    /// True iff the tile with the given coordinates contains at least one
    /// point of the iteration space.
    pub fn tile_is_nonempty(&self, tile: &[i64], space: &IterationSpace) -> bool {
        if let Some(sides) = &self.rect_sides {
            // Tile spans [tile_d * side_d, (tile_d+1) * side_d).
            return tile
                .iter()
                .zip(sides.iter())
                .enumerate()
                .all(|(d, (&t, &s))| {
                    let tile_lo = t * s;
                    let tile_hi = tile_lo + s - 1;
                    tile_hi >= space.lower()[d] && tile_lo <= space.upper()[d]
                });
        }
        self.points_in_tile(tile, space).next().is_some()
    }

    /// Iterate the iteration-space points belonging to a given tile.
    pub fn points_in_tile<'a>(
        &'a self,
        tile: &[i64],
        space: &'a IterationSpace,
    ) -> Box<dyn Iterator<Item = Point> + 'a> {
        if let Some(sides) = &self.rect_sides {
            let n = self.dims();
            let mut lo = Vec::with_capacity(n);
            let mut hi = Vec::with_capacity(n);
            for d in 0..n {
                let tl = tile[d] * sides[d];
                let th = tl + sides[d] - 1;
                let l = tl.max(space.lower()[d]);
                let h = th.min(space.upper()[d]);
                if l > h {
                    return Box::new(std::iter::empty());
                }
                lo.push(l);
                hi.push(h);
            }
            return Box::new(IterationSpace::new(lo, hi).points());
        }
        let origin = self.p.mul_vec(tile);
        let domain = self.fundamental_domain();
        Box::new(domain.into_iter().filter_map(move |off| {
            let j: Vec<i64> = origin.iter().zip(&off).map(|(&a, &b)| a + b).collect();
            space.contains(&j).then_some(j)
        }))
    }
}

impl fmt::Debug for Tiling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(s) = &self.rect_sides {
            write!(f, "Tiling(rect {s:?})")
        } else {
            write!(f, "Tiling(P = {:?})", self.p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_2d() -> Tiling {
        // P = [[2, 1], [0, 2]]: parallelogram tiles, det = 4.
        Tiling::from_side_matrix(IntMatrix::from_rows(&[&[2, 1], &[0, 2]])).unwrap()
    }

    #[test]
    fn rectangular_detection() {
        let t = Tiling::rectangular(&[10, 10]);
        assert_eq!(t.rectangular_sides(), Some(&[10, 10][..]));
        assert!(skewed_2d().rectangular_sides().is_none());
    }

    #[test]
    fn volume_is_det_p() {
        assert_eq!(Tiling::rectangular(&[10, 10]).volume(), 100);
        assert_eq!(Tiling::rectangular(&[4, 4, 444]).volume(), 7104);
        assert_eq!(skewed_2d().volume(), 4);
    }

    #[test]
    fn tile_of_rectangular() {
        let t = Tiling::rectangular(&[10, 10]);
        assert_eq!(t.tile_of(&[0, 0]), vec![0, 0]);
        assert_eq!(t.tile_of(&[9, 9]), vec![0, 0]);
        assert_eq!(t.tile_of(&[10, 9]), vec![1, 0]);
        assert_eq!(t.tile_of(&[25, 37]), vec![2, 3]);
        // Negative coordinates floor towards −∞.
        assert_eq!(t.tile_of(&[-1, 0]), vec![-1, 0]);
        assert_eq!(t.tile_of(&[-10, -11]), vec![-1, -2]);
    }

    #[test]
    fn transform_roundtrip_rectangular() {
        let t = Tiling::rectangular(&[7, 5]);
        for j in IterationSpace::new(vec![-12, -12], vec![12, 12]).points() {
            let (tile, off) = t.transform(&j);
            assert_eq!(t.reconstruct(&tile, &off), j);
            // Offset lies in the fundamental domain.
            assert!(off[0] >= 0 && off[0] < 7, "offset {off:?}");
            assert!(off[1] >= 0 && off[1] < 5, "offset {off:?}");
        }
    }

    #[test]
    fn transform_roundtrip_skewed() {
        let t = skewed_2d();
        for j in IterationSpace::new(vec![-6, -6], vec![6, 6]).points() {
            let (tile, off) = t.transform(&j);
            assert_eq!(t.reconstruct(&tile, &off), j);
            // Offset is in the origin tile.
            assert!(t.tile_of(&t.reconstruct(&[0, 0], &off)) == vec![0, 0]);
        }
    }

    #[test]
    fn legality_rectangular_nonnegative_deps() {
        let t = Tiling::rectangular(&[10, 10]);
        assert!(t.is_legal(&DependenceSet::example_1()));
        // A negative dependence component is illegal for axis tiles.
        let bad = DependenceSet::from_vectors(2, vec![vec![1, -1]]);
        assert_eq!(
            t.check_legal(&bad),
            Err(TilingError::Illegal { dep_index: 0 })
        );
    }

    #[test]
    fn legality_skewed_tiling_accepts_skewed_dep() {
        // P = [[2,1],[0,2]] ⇒ H = [[1/2, -1/4], [0, 1/2]].
        // d = (1, -1) has Hd = (3/4, -1/2): illegal.
        // d = (1, 1) has Hd = (1/4, 1/2): legal.
        let t = skewed_2d();
        assert!(t.is_legal(&DependenceSet::from_vectors(2, vec![vec![1, 1]])));
        assert!(!t.is_legal(&DependenceSet::from_vectors(2, vec![vec![1, -1]])));
    }

    #[test]
    fn containment() {
        let t = Tiling::rectangular(&[10, 10]);
        assert!(t.contains_dependences(&DependenceSet::example_1()));
        let big = DependenceSet::from_vectors(2, vec![vec![10, 0]]);
        assert_eq!(
            t.check_contains(&big),
            Err(TilingError::DependenceNotContained { dep_index: 0 })
        );
    }

    #[test]
    fn fundamental_domain_sizes() {
        assert_eq!(Tiling::rectangular(&[3, 4]).fundamental_domain().len(), 12);
        assert_eq!(skewed_2d().fundamental_domain().len(), 4);
    }

    #[test]
    fn tile_dependences_example_1() {
        let t = Tiling::rectangular(&[10, 10]);
        let ds = t.tile_dependences(&DependenceSet::example_1());
        // D = {(1,1),(1,0),(0,1)} ⇒ D^S = {(0,1),(1,0),(1,1)}.
        let vecs: Vec<_> = ds.iter().map(|d| d.components().to_vec()).collect();
        assert_eq!(vecs.len(), 3);
        assert!(vecs.contains(&vec![1, 0]));
        assert!(vecs.contains(&vec![0, 1]));
        assert!(vecs.contains(&vec![1, 1]));
    }

    #[test]
    fn tile_dependences_unit_deps() {
        // Paper's 3-D kernel: D = {e1,e2,e3} ⇒ D^S = {e1,e2,e3}.
        let t = Tiling::rectangular(&[4, 4, 444]);
        let ds = t.tile_dependences(&DependenceSet::paper_3d());
        let got: std::collections::BTreeSet<Vec<i64>> =
            ds.iter().map(|x| x.components().to_vec()).collect();
        let want: std::collections::BTreeSet<Vec<i64>> = DependenceSet::units(3)
            .iter()
            .map(|x| x.components().to_vec())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn tile_dependences_fast_path_matches_generic() {
        let t = Tiling::rectangular(&[4, 3]);
        let deps = DependenceSet::from_vectors(2, vec![vec![1, 1], vec![2, 0], vec![0, 1]]);
        assert_eq!(t.tile_dependences(&deps), t.tile_dependences_generic(&deps));
    }

    #[test]
    fn tiled_space_rectangular_exact() {
        // 10000×1000 space with 10×10 tiles ⇒ 1000×100 tiles (Example 1).
        let t = Tiling::rectangular(&[10, 10]);
        let s = IterationSpace::from_extents(&[10_000, 1_000]);
        let ts = t.tiled_space(&s);
        assert_eq!(ts.lower(), &[0, 0]);
        assert_eq!(ts.upper(), &[999, 99]);
    }

    #[test]
    fn tiled_space_with_partial_tiles() {
        // Extent 11 with side 4 ⇒ tiles 0,1,2 (last one partial).
        let t = Tiling::rectangular(&[4]);
        let s = IterationSpace::from_extents(&[11]);
        let ts = t.tiled_space(&s);
        assert_eq!(ts.upper(), &[2]);
        assert!(t.tile_is_nonempty(&[2], &s));
        assert_eq!(t.points_in_tile(&[2], &s).count(), 3);
    }

    #[test]
    fn points_in_tile_cover_space_exactly() {
        let t = Tiling::rectangular(&[3, 4]);
        let s = IterationSpace::from_extents(&[7, 9]);
        let ts = t.tiled_space(&s);
        let mut count = 0usize;
        for tile in ts.points() {
            for j in t.points_in_tile(&tile, &s) {
                assert!(s.contains(&j));
                assert_eq!(t.tile_of(&j), tile);
                count += 1;
            }
        }
        assert_eq!(count as u64, s.volume());
    }

    #[test]
    fn points_in_tile_skewed_cover() {
        let t = skewed_2d();
        let s = IterationSpace::from_extents(&[6, 6]);
        let ts = t.tiled_space(&s);
        let mut count = 0usize;
        for tile in ts.points() {
            for j in t.points_in_tile(&tile, &s) {
                assert!(s.contains(&j));
                assert_eq!(t.tile_of(&j), tile);
                count += 1;
            }
        }
        assert_eq!(count as u64, s.volume());
    }

    #[test]
    fn singular_p_rejected() {
        let err = Tiling::from_side_matrix(IntMatrix::from_rows(&[&[1, 2], &[2, 4]]));
        assert_eq!(err.unwrap_err(), TilingError::Singular);
    }

    #[test]
    fn non_square_p_rejected() {
        let err = Tiling::from_side_matrix(IntMatrix::from_rows(&[&[1, 2, 3], &[4, 5, 6]]));
        assert_eq!(err.unwrap_err(), TilingError::NotSquare);
    }

    #[test]
    fn error_display() {
        assert!(TilingError::Illegal { dep_index: 2 }
            .to_string()
            .contains("#2"));
    }
}
