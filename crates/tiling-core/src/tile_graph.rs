//! Explicit tile dependence graphs.
//!
//! The tiled space `J^S` with its dependence set `D^S` forms a DAG whose
//! nodes are tiles and whose edges are tile dependences. This module
//! materializes that DAG for *small* spaces — it is the oracle used to
//! validate legality (acyclicity), schedule correctness (every edge
//! advances time sufficiently) and the closed-form schedule-length
//! formulas, and it feeds the simulator's program builder.

use crate::dependence::DependenceSet;
use crate::mapping::ProcessorMapping;
use crate::space::{IterationSpace, Point};
use std::collections::HashMap;

/// A materialized tile DAG over a rectangular tiled space.
#[derive(Clone, Debug)]
pub struct TileGraph {
    space: IterationSpace,
    deps: DependenceSet,
    /// Node index of each tile (row-major enumeration of the space).
    index: HashMap<Point, usize>,
    nodes: Vec<Point>,
    /// `edges[v]` = indices of the tiles `v` depends on (predecessors).
    preds: Vec<Vec<usize>>,
    /// Successor adjacency.
    succs: Vec<Vec<usize>>,
}

impl TileGraph {
    /// Build the DAG of `tiled_space` under tile dependences `tile_deps`.
    ///
    /// Intended for validation: the graph is O(|J^S|·|D^S|) in memory.
    pub fn build(tiled_space: &IterationSpace, tile_deps: &DependenceSet) -> Self {
        assert_eq!(tiled_space.dims(), tile_deps.dims(), "arity mismatch");
        let nodes: Vec<Point> = tiled_space.points().collect();
        let mut index = HashMap::with_capacity(nodes.len());
        for (i, p) in nodes.iter().enumerate() {
            index.insert(p.clone(), i);
        }
        let mut preds = vec![Vec::new(); nodes.len()];
        let mut succs = vec![Vec::new(); nodes.len()];
        for (vi, v) in nodes.iter().enumerate() {
            for d in tile_deps.iter() {
                let pred: Point = v.iter().zip(d.components()).map(|(&a, &b)| a - b).collect();
                if let Some(&pi) = index.get(&pred) {
                    preds[vi].push(pi);
                    succs[pi].push(vi);
                }
            }
        }
        TileGraph {
            space: tiled_space.clone(),
            deps: tile_deps.clone(),
            index,
            nodes,
            preds,
            succs,
        }
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the graph has no tiles (never happens for valid spaces).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The tile coordinates of node `i`.
    pub fn tile(&self, i: usize) -> &Point {
        &self.nodes[i]
    }

    /// Node index of a tile.
    pub fn node(&self, tile: &Point) -> Option<usize> {
        self.index.get(tile).copied()
    }

    /// Predecessors (dependencies) of node `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Successors of node `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// The underlying tiled space.
    pub fn space(&self) -> &IterationSpace {
        &self.space
    }

    /// The tile dependence set.
    pub fn deps(&self) -> &DependenceSet {
        &self.deps
    }

    /// Kahn topological order; `None` if the graph has a cycle (an
    /// illegal tiling produces cyclic tile dependences).
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = indeg
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| (d == 0).then_some(i))
            .collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(v) = queue.pop() {
            order.push(v);
            for &s in &self.succs[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        (order.len() == self.len()).then_some(order)
    }

    /// Check a time assignment against the DAG: every edge `u → v` must
    /// satisfy `t(v) − t(u) ≥ lag(u, v)`, where the lag is decided by the
    /// caller (1 for the non-overlapping schedule; 1 same-processor / 2
    /// cross-processor for the overlapping one).
    pub fn validate_times<T, L>(&self, time_of: T, lag: L) -> Result<(), ScheduleViolation>
    where
        T: Fn(&Point) -> i64,
        L: Fn(&Point, &Point) -> i64,
    {
        for (vi, v) in self.nodes.iter().enumerate() {
            let tv = time_of(v);
            for &pi in &self.preds[vi] {
                let u = &self.nodes[pi];
                let tu = time_of(u);
                let need = lag(u, v);
                if tv - tu < need {
                    return Err(ScheduleViolation {
                        from: u.clone(),
                        to: v.clone(),
                        t_from: tu,
                        t_to: tv,
                        required_lag: need,
                    });
                }
            }
        }
        Ok(())
    }

    /// Critical-path length in *steps* under per-edge lags: the longest
    /// chain, counting each node once plus edge lags. This is the minimum
    /// schedule length any time assignment can achieve.
    pub fn critical_path<L>(&self, lag: L) -> i64
    where
        L: Fn(&Point, &Point) -> i64,
    {
        let order = self
            .topological_order()
            .expect("critical path of cyclic graph");
        let mut dist = vec![0i64; self.len()];
        let mut best = 0;
        for &v in order.iter() {
            for &p in &self.preds[v] {
                let l = lag(&self.nodes[p], &self.nodes[v]);
                dist[v] = dist[v].max(dist[p] + l);
            }
            best = best.max(dist[v]);
        }
        best + 1
    }

    /// Unit lag for the non-overlapping schedule.
    pub fn unit_lag(_: &Point, _: &Point) -> i64 {
        1
    }

    /// The overlapping schedule's lag: 1 if the edge stays on one
    /// processor, 2 if it crosses processors.
    pub fn overlap_lag(mapping: &ProcessorMapping) -> impl Fn(&Point, &Point) -> i64 + '_ {
        move |u: &Point, v: &Point| {
            let diff: Vec<i64> = v.iter().zip(u).map(|(&a, &b)| a - b).collect();
            let cross = mapping.processor_of(&diff).iter().any(|&x| x != 0);
            if cross {
                2
            } else {
                1
            }
        }
    }
}

/// A dependence edge whose endpoints are scheduled too close together.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScheduleViolation {
    /// Producer tile.
    pub from: Point,
    /// Consumer tile.
    pub to: Point,
    /// Producer step.
    pub t_from: i64,
    /// Consumer step.
    pub t_to: i64,
    /// Minimum allowed `t_to − t_from`.
    pub required_lag: i64,
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "edge {:?}@{} → {:?}@{} violates lag {}",
            self.from, self.t_from, self.to, self.t_to, self.required_lag
        )
    }
}

impl std::error::Error for ScheduleViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{NonOverlapSchedule, OverlapSchedule};

    fn grid(extents: &[i64]) -> (IterationSpace, TileGraph) {
        let space = IterationSpace::from_extents(extents);
        let deps = DependenceSet::units(extents.len());
        let g = TileGraph::build(&space, &deps);
        (space, g)
    }

    #[test]
    fn build_counts() {
        let (_, g) = grid(&[3, 4]);
        assert_eq!(g.len(), 12);
        // Interior node has 2 preds; origin has 0.
        let origin = g.node(&vec![0, 0]).unwrap();
        assert!(g.preds(origin).is_empty());
        let interior = g.node(&vec![1, 1]).unwrap();
        assert_eq!(g.preds(interior).len(), 2);
    }

    #[test]
    fn topological_order_valid() {
        let (_, g) = grid(&[3, 3, 3]);
        let order = g.topological_order().unwrap();
        assert_eq!(order.len(), 27);
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(p, &n)| (n, p)).collect();
        for v in 0..g.len() {
            for &p in g.preds(v) {
                assert!(pos[&p] < pos[&v]);
            }
        }
    }

    #[test]
    fn nonoverlap_schedule_is_valid_with_unit_lag() {
        let (space, g) = grid(&[4, 5]);
        let s = NonOverlapSchedule::new(&space);
        g.validate_times(|t| s.time_of(t, &space), TileGraph::unit_lag)
            .unwrap();
    }

    #[test]
    fn overlap_schedule_is_valid_with_overlap_lag() {
        let (space, g) = grid(&[4, 4, 9]);
        let s = OverlapSchedule::with_mapping(3, 2);
        let lag = TileGraph::overlap_lag(s.mapping());
        g.validate_times(|t| s.time_of(t, &space), lag).unwrap();
    }

    #[test]
    fn nonoverlap_times_violate_overlap_lag() {
        // The Π=[1..1] schedule gives cross-processor edges Δt = 1,
        // which the overlapping execution model forbids.
        let (space, g) = grid(&[3, 6]);
        let no = NonOverlapSchedule::with_mapping(2, 1);
        let ov = OverlapSchedule::with_mapping(2, 1);
        let lag = TileGraph::overlap_lag(ov.mapping());
        assert!(g.validate_times(|t| no.time_of(t, &space), lag).is_err());
    }

    #[test]
    fn critical_path_matches_nonoverlap_length() {
        // With unit lags on a grid, the critical path is exactly the
        // Π=[1…1] schedule length: Σ(extent−1)+1.
        for extents in [vec![3i64, 4], vec![2, 2, 5], vec![6, 1]] {
            let (space, g) = grid(&extents);
            let s = NonOverlapSchedule::new(&space);
            assert_eq!(
                g.critical_path(TileGraph::unit_lag),
                s.schedule_length(&space),
                "extents {extents:?}"
            );
        }
    }

    #[test]
    fn critical_path_matches_overlap_length() {
        // With overlap lags, the critical path equals
        // 2·Σ_{k≠i}(e_k−1) + (e_i−1) + 1 — the overlap schedule is
        // optimal (Andronikos et al. [1]).
        for (extents, mdim) in [(vec![3i64, 7], 1usize), (vec![4, 4, 9], 2), (vec![2, 5], 1)] {
            let (space, g) = grid(&extents);
            let s = OverlapSchedule::with_mapping(extents.len(), mdim);
            let lag = TileGraph::overlap_lag(s.mapping());
            assert_eq!(
                g.critical_path(lag),
                s.schedule_length(&space),
                "extents {extents:?}"
            );
        }
    }

    #[test]
    fn mapping_along_longest_dim_minimizes_overlap_length() {
        // [1]'s space-schedule result: the best mapping dimension is the
        // longest one. Check by exhaustion on an asymmetric grid.
        let extents = vec![3i64, 8, 2];
        let space = IterationSpace::from_extents(&extents);
        let mut lengths = Vec::new();
        for d in 0..3 {
            let s = OverlapSchedule::with_mapping(3, d);
            lengths.push(s.schedule_length(&space));
        }
        let best = *lengths.iter().min().unwrap();
        assert_eq!(lengths[1], best); // dim 1 has extent 8 = longest
    }

    #[test]
    fn diagonal_deps_edges() {
        let space = IterationSpace::from_extents(&[3, 3]);
        let deps = DependenceSet::from_vectors(2, vec![vec![1, 1]]);
        let g = TileGraph::build(&space, &deps);
        let v = g.node(&vec![2, 2]).unwrap();
        assert_eq!(g.preds(v).len(), 1);
        assert_eq!(g.tile(g.preds(v)[0]), &vec![1, 1]);
        // Border nodes along the diagonal's shadow have no preds.
        let b = g.node(&vec![0, 2]).unwrap();
        assert!(g.preds(b).is_empty());
    }

    #[test]
    fn violation_reports_edge() {
        let (space, g) = grid(&[2, 2]);
        // A constant time function violates every edge.
        let err = g.validate_times(|_| 0, TileGraph::unit_lag).unwrap_err();
        assert_eq!(err.required_lag, 1);
        assert_eq!(err.t_from, 0);
        let _ = err.to_string();
        let _ = space;
    }
}
