//! # tiling-core
//!
//! Loop tiling (supernode transformation) with overlapping and
//! non-overlapping tile schedules — a from-scratch implementation of
//!
//! > G. Goumas, A. Sotiropoulos, N. Koziris, *Minimizing Completion Time
//! > for Loop Tiling with Computation and Communication Overlapping*,
//! > IPPS 2001.
//!
//! The crate models perfectly nested loops with uniform dependences
//! ([`loopnest`], [`space`], [`dependence`]), partitions their iteration
//! spaces into supernodes/tiles ([`tiling`], exact rational linear
//! algebra in [`matrix`] / [`rational`]), prices computation and
//! communication per tile ([`cost`], [`machine`]), and schedules the
//! tiled space two ways:
//!
//! * the classical non-overlapping hyperplane schedule
//!   ([`schedule::nonoverlap`], eq. 3 of the paper), and
//! * the paper's pipelined, communication-overlapping schedule
//!   ([`schedule::overlap`], eq. 4/5), rooted in the optimal UET-UCT
//!   grid-graph schedules of [`uet_uct`].
//!
//! [`tile_graph`] materializes tile DAGs for validation, [`mapping`]
//! assigns tiles to processors and computes per-neighbor message
//! volumes, and [`optimize`] sweeps tile sizes/shapes.
//!
//! ## Quick start
//!
//! ```
//! use tiling_core::prelude::*;
//!
//! // Example 1 of the paper: 10000×1000 loop, D = {(1,1),(1,0),(0,1)}.
//! let nest = LoopNest::example_1();
//! let deps = nest.dependences().unwrap();
//! let tiling = Tiling::rectangular(&[10, 10]);
//! assert!(tiling.is_legal(&deps));
//!
//! let machine = MachineParams::example_1();
//! let nonoverlap = NonOverlapSchedule::with_mapping(2, 0)
//!     .analyze(&tiling, &deps, nest.space(), &machine);
//! let overlap = OverlapSchedule::with_mapping(2, 0)
//!     .analyze(&tiling, &deps, nest.space(), &machine, OverlapMode::DuplexDma);
//!
//! // The overlapping schedule wins: 0.24 s vs 0.40 s.
//! assert!(overlap.total_secs() < nonoverlap.total_secs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod closed_form;
pub mod codegen;
pub mod cost;
pub mod dependence;
pub mod loopnest;
pub mod machine;
pub mod mapping;
pub mod matrix;
pub mod optimize;
pub mod parse;
pub mod polyhedra;
pub mod rational;
pub mod schedule;
pub mod space;
pub mod tile_graph;
pub mod tiling;
pub mod transform;
pub mod uet_uct;

/// Convenient re-exports of the main types.
pub mod prelude {
    pub use crate::closed_form::{nonoverlap_optimal_v, overlap_optimal_v, ClosedForm};
    pub use crate::codegen::{tiled_rectangular, transformed_domain, GeneratedNest, LoopLevel};
    pub use crate::cost::{v_comm_mapped, v_comm_per_dimension, v_comm_total, v_comp};
    pub use crate::dependence::{Dependence, DependenceSet};
    pub use crate::loopnest::{Access, ArrayId, LoopNest, Statement};
    pub use crate::machine::{
        AffineCost, CostCurveError, KernelTier, MachineParams, NodeSpeeds, PiecewiseCost,
        SpeedError,
    };
    pub use crate::mapping::{neighbor_messages, NeighborMessage, ProcessorMapping};
    pub use crate::matrix::{IntMatrix, RatMatrix};
    pub use crate::optimize::{
        best_nonoverlap, best_overlap, best_rectangular_plan, sweep_tile_height, SweepPoint,
        TilingPlan,
    };
    pub use crate::parse::{parse_loop_nest, ParseError};
    pub use crate::rational::Rational;
    pub use crate::schedule::{
        LinearSchedule, NonOverlapReport, NonOverlapSchedule, OverlapMode, OverlapReport,
        OverlapSchedule, StepPlan, StepStrategy,
    };
    pub use crate::space::{IterationSpace, Point};
    pub use crate::tile_graph::TileGraph;
    pub use crate::tiling::{Tiling, TilingError};
    pub use crate::transform::{legalizing_skew, TransformError, Unimodular};
}
