//! Pseudocode emission: render a [`ClusterProblem`]'s per-rank programs
//! in the paper's §5 listing style (`ProcB` / `ProcNB`), for
//! documentation, debugging and golden tests.
//!
//! The emitted text is the *actual* program the simulator interprets —
//! loop-recompressed for readability: runs of identical per-step
//! structure collapse into a `for k` loop exactly like the paper's
//! listings, with the irregular prologue/epilogue steps shown explicitly.

use crate::builders::ClusterProblem;
use crate::program::{Op, Program};
use std::fmt::Write as _;
use tiling_core::machine::MachineParams;

/// Render one rank's program as paper-style pseudocode.
pub fn render_program(p: &Program) -> String {
    let mut out = String::new();
    for op in p.ops() {
        let _ = match op {
            Op::Compute { us, label } => writeln!(out, "  compute(tile {label})  // {us:.1} µs"),
            Op::Send { to, tag, bytes } => {
                writeln!(out, "  MPI_Send(to P{to}, tag {tag}, {bytes} B)")
            }
            Op::Recv { from, tag, bytes } => {
                writeln!(out, "  MPI_Recv(from P{from}, tag {tag}, {bytes} B)")
            }
            Op::Isend {
                to,
                tag,
                bytes,
                req,
            } => writeln!(
                out,
                "  MPI_Isend(to P{to}, tag {tag}, {bytes} B) -> r{}",
                req.0
            ),
            Op::Irecv {
                from,
                tag,
                bytes,
                req,
            } => writeln!(
                out,
                "  MPI_Irecv(from P{from}, tag {tag}, {bytes} B) -> r{}",
                req.0
            ),
            Op::Wait { req } => writeln!(out, "  MPI_Wait(r{})", req.0),
        };
    }
    out
}

/// Render the blocking (`ProcB`) and overlapping (`ProcNB`) programs of
/// one rank of a problem, side by side with headers — the §5 listings,
/// generated instead of hand-written.
pub fn render_rank_listings(
    problem: &ClusterProblem,
    machine: &MachineParams,
    rank: usize,
    max_ops: usize,
) -> String {
    let blocking = &problem.blocking_programs(machine)[rank];
    let overlap = &problem.overlapping_programs(machine)[rank];
    let truncate = |text: String| -> String {
        let lines: Vec<&str> = text.lines().collect();
        if lines.len() <= max_ops {
            text
        } else {
            let mut t = lines[..max_ops].join("\n");
            let _ = write!(t, "\n  … ({} more ops)", lines.len() - max_ops);
            t + "\n"
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "ProcB(rank {rank})  // blocking, §3:");
    out += &truncate(render_program(blocking));
    let _ = writeln!(out, "\nProcNB(rank {rank})  // overlapping, §4:");
    out += &truncate(render_program(overlap));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiling_core::prelude::*;

    fn problem() -> ClusterProblem {
        ClusterProblem::new(
            Tiling::rectangular(&[2, 2, 4]),
            DependenceSet::paper_3d(),
            IterationSpace::from_extents(&[4, 4, 16]),
            2,
        )
        .unwrap()
    }

    #[test]
    fn blocking_listing_shows_triplets() {
        let machine = MachineParams::example_1();
        let p = problem();
        // Rank 3 (coords (1,1)) receives from two neighbors and computes.
        let text = render_program(&p.blocking_programs(&machine)[3]);
        let first_recv = text.find("MPI_Recv").expect("has recvs");
        let first_compute = text.find("compute").expect("has computes");
        assert!(first_recv < first_compute, "recv precedes compute:\n{text}");
        // Rank 0 sends but never receives.
        let r0 = render_program(&p.blocking_programs(&machine)[0]);
        assert!(r0.contains("MPI_Send"));
        assert!(!r0.contains("MPI_Recv"));
    }

    #[test]
    fn overlap_listing_posts_before_compute() {
        let machine = MachineParams::example_1();
        let p = problem();
        let text = render_program(&p.overlapping_programs(&machine)[3]);
        assert!(text.contains("MPI_Irecv"));
        assert!(text.contains("MPI_Wait"));
        // Prologue: the very first op is a posted receive.
        assert!(text.lines().next().unwrap().contains("MPI_Irecv"), "{text}");
    }

    #[test]
    fn rank_listings_truncate() {
        let machine = MachineParams::example_1();
        let p = problem();
        let text = render_rank_listings(&p, &machine, 3, 6);
        assert!(text.contains("ProcB(rank 3)"));
        assert!(text.contains("ProcNB(rank 3)"));
        assert!(text.contains("more ops"));
    }

    #[test]
    fn byte_counts_rendered() {
        let machine = MachineParams::example_1();
        let p = problem();
        // Face = 2×4 points × 4 B = 32 B.
        let text = render_program(&p.blocking_programs(&machine)[0]);
        assert!(text.contains("32 B"), "{text}");
    }
}
