//! Per-rank operation programs.
//!
//! Writing schedule executors as coroutines inside a discrete-event
//! simulator is awkward in Rust, so the simulator instead *interprets*
//! a straight-line program of message-passing operations per rank —
//! exactly the shape of the paper's `ProcB` (blocking) and `ProcNB`
//! (non-blocking) pseudocode in §5. Loops are unrolled by the program
//! builders in [`crate::builders`].

use std::fmt;

/// A process rank.
pub type Rank = usize;

/// A per-rank request handle for non-blocking operations. Handles are
/// local to one rank's program and must be unique within it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ReqId(pub u32);

/// One message-passing or compute operation.
#[derive(Clone, PartialEq, Debug)]
pub enum Op {
    /// Busy the CPU for a given number of microseconds (a tile
    /// computation).
    Compute {
        /// CPU time in µs.
        us: f64,
        /// Opaque label for traces (e.g. the tile's step).
        label: u64,
    },
    /// Blocking send (`MPI_Send`): the CPU walks the full user→kernel
    /// copy path and the wire transmission before continuing (Fig. 7).
    Send {
        /// Destination rank.
        to: Rank,
        /// Match tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// Blocking receive (`MPI_Recv`): blocks until the matching message
    /// has arrived, then pays the copy path.
    Recv {
        /// Source rank.
        from: Rank,
        /// Match tag.
        tag: u64,
        /// Payload bytes (must equal the sender's).
        bytes: u64,
    },
    /// Non-blocking send (`MPI_Isend`): the CPU pays only the MPI-buffer
    /// fill (`A₁`); kernel copy and transmission proceed on the NIC/DMA
    /// lanes (`B₃`, `B₄`).
    Isend {
        /// Destination rank.
        to: Rank,
        /// Match tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
        /// Completion handle.
        req: ReqId,
    },
    /// Non-blocking receive (`MPI_Irecv`): the CPU pays the MPI-buffer
    /// preparation (`A₃`); delivery happens on the receive lanes
    /// (`B₁`, `B₂`).
    Irecv {
        /// Source rank.
        from: Rank,
        /// Match tag.
        tag: u64,
        /// Payload bytes (must equal the sender's).
        bytes: u64,
        /// Completion handle.
        req: ReqId,
    },
    /// Block until the given request completes (`MPI_Wait`).
    Wait {
        /// Handle to wait for.
        req: ReqId,
    },
}

/// A rank's full (unrolled) program.
#[derive(Clone, Default, Debug)]
pub struct Program {
    ops: Vec<Op>,
    next_req: u32,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Append an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Allocate a fresh request handle.
    pub fn fresh_req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    /// Convenience: append `Compute`.
    pub fn compute(&mut self, us: f64, label: u64) {
        self.push(Op::Compute { us, label });
    }

    /// Convenience: append a blocking `Send`.
    pub fn send(&mut self, to: Rank, tag: u64, bytes: u64) {
        self.push(Op::Send { to, tag, bytes });
    }

    /// Convenience: append a blocking `Recv`.
    pub fn recv(&mut self, from: Rank, tag: u64, bytes: u64) {
        self.push(Op::Recv { from, tag, bytes });
    }

    /// Convenience: append `Isend`, returning its request handle.
    pub fn isend(&mut self, to: Rank, tag: u64, bytes: u64) -> ReqId {
        let req = self.fresh_req();
        self.push(Op::Isend {
            to,
            tag,
            bytes,
            req,
        });
        req
    }

    /// Convenience: append `Irecv`, returning its request handle.
    pub fn irecv(&mut self, from: Rank, tag: u64, bytes: u64) -> ReqId {
        let req = self.fresh_req();
        self.push(Op::Irecv {
            from,
            tag,
            bytes,
            req,
        });
        req
    }

    /// Convenience: append `Wait`.
    pub fn wait(&mut self, req: ReqId) {
        self.push(Op::Wait { req });
    }

    /// The operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff the program has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Static sanity check: every `Wait` refers to a request created by
    /// an earlier `Isend`/`Irecv`, and no request is waited twice.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let mut created = std::collections::HashSet::new();
        let mut waited = std::collections::HashSet::new();
        for (idx, op) in self.ops.iter().enumerate() {
            match op {
                Op::Isend { req, .. } | Op::Irecv { req, .. } if !created.insert(*req) => {
                    return Err(ProgramError::DuplicateRequest { idx, req: *req });
                }
                Op::Wait { req } => {
                    if !created.contains(req) {
                        return Err(ProgramError::WaitBeforeCreate { idx, req: *req });
                    }
                    if !waited.insert(*req) {
                        return Err(ProgramError::DoubleWait { idx, req: *req });
                    }
                }
                Op::Compute { us, .. } if (!us.is_finite() || *us < 0.0) => {
                    return Err(ProgramError::BadCompute { idx });
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Static program validation errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProgramError {
    /// A request handle was used by two `Isend`/`Irecv` operations.
    DuplicateRequest {
        /// Op index.
        idx: usize,
        /// Offending handle.
        req: ReqId,
    },
    /// A `Wait` refers to a handle not yet created.
    WaitBeforeCreate {
        /// Op index.
        idx: usize,
        /// Offending handle.
        req: ReqId,
    },
    /// A handle was waited on twice.
    DoubleWait {
        /// Op index.
        idx: usize,
        /// Offending handle.
        req: ReqId,
    },
    /// A `Compute` has a negative or non-finite duration.
    BadCompute {
        /// Op index.
        idx: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DuplicateRequest { idx, req } => {
                write!(f, "op #{idx}: request {req:?} created twice")
            }
            ProgramError::WaitBeforeCreate { idx, req } => {
                write!(f, "op #{idx}: wait on uncreated request {req:?}")
            }
            ProgramError::DoubleWait { idx, req } => {
                write!(f, "op #{idx}: request {req:?} waited twice")
            }
            ProgramError::BadCompute { idx } => write!(f, "op #{idx}: bad compute duration"),
        }
    }
}

impl std::error::Error for ProgramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_helpers() {
        let mut p = Program::new();
        p.compute(10.0, 0);
        let r = p.isend(1, 7, 100);
        p.wait(r);
        assert_eq!(p.len(), 3);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn fresh_reqs_are_unique() {
        let mut p = Program::new();
        let a = p.fresh_req();
        let b = p.fresh_req();
        assert_ne!(a, b);
    }

    #[test]
    fn wait_before_create_rejected() {
        let mut p = Program::new();
        p.wait(ReqId(0));
        assert!(matches!(
            p.validate(),
            Err(ProgramError::WaitBeforeCreate { .. })
        ));
    }

    #[test]
    fn double_wait_rejected() {
        let mut p = Program::new();
        let r = p.isend(0, 0, 8);
        p.wait(r);
        p.wait(r);
        assert!(matches!(p.validate(), Err(ProgramError::DoubleWait { .. })));
    }

    #[test]
    fn duplicate_request_rejected() {
        let mut p = Program::new();
        p.push(Op::Isend {
            to: 0,
            tag: 0,
            bytes: 1,
            req: ReqId(5),
        });
        p.push(Op::Irecv {
            from: 0,
            tag: 1,
            bytes: 1,
            req: ReqId(5),
        });
        assert!(matches!(
            p.validate(),
            Err(ProgramError::DuplicateRequest { .. })
        ));
    }

    #[test]
    fn bad_compute_rejected() {
        let mut p = Program::new();
        p.compute(f64::NAN, 0);
        assert!(matches!(p.validate(), Err(ProgramError::BadCompute { .. })));
    }

    #[test]
    fn error_display() {
        let e = ProgramError::DoubleWait {
            idx: 3,
            req: ReqId(1),
        };
        assert!(e.to_string().contains("op #3"));
    }
}
