//! The discrete-event simulation engine.
//!
//! Each rank owns three resources, mirroring §4's timing decomposition
//! (Fig. 4/5):
//!
//! * a **CPU lane** — computations (`A₂`), non-blocking posting costs
//!   (`A₁`, `A₃`) and, for *blocking* primitives, the full copy+transmit
//!   path (Fig. 7);
//! * a **TX lane** (NIC/DMA, send direction) — kernel-buffer fill `B₃`
//!   and wire transmission `B₄` of non-blocking sends;
//! * an **RX lane** (receive direction) — wire receive `B₁` and
//!   kernel-buffer copy `B₂` of incoming non-blocking messages.
//!
//! With [`SimConfig::duplex`] `= false` the TX and RX lanes collapse into
//! one half-duplex NIC (the paper's Fig. 4b serialized `B₁+B₂+B₃+B₄`);
//! with `true` the directions overlap (Fig. 3c, multi-channel DMA).
//!
//! Messages match by `(source rank, tag)` in FIFO order, with eager
//! (unbounded) buffering, which is what MPICH did for these sizes.
//! Blocking sends deposit the message after their CPU-side transmit —
//! their wire time is *not* charged again on the receiver's RX lane, so
//! a blocking send/receive pair costs exactly
//! `2·T_startup + T_transmit` (eq. 3).

use crate::program::{Op, Program, Rank, ReqId};
use crate::time::SimTime;
use crate::trace::{Activity, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use tiling_core::machine::{MachineParams, NodeSpeeds};

/// How the wire itself is shared between nodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum NetworkTopology {
    /// A switched network: each node's wire segment is independent
    /// (the bandwidth term serializes per NIC only). This is the
    /// implicit model of the paper's analysis.
    #[default]
    Switched,
    /// A shared medium (a late-90s Ethernet *hub*): all transmissions
    /// contend for one global bus — the `B₄` wire time of every message
    /// in the cluster serializes.
    SharedBus,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Machine timing parameters.
    pub machine: MachineParams,
    /// Full-duplex NIC/DMA (TX and RX lanes independent) vs half-duplex.
    pub duplex: bool,
    /// Extra wire propagation latency per message (µs), on top of the
    /// bandwidth term. Zero matches the paper's model.
    pub wire_latency_us: f64,
    /// Record a full activity trace (disable for huge sweeps).
    pub record_trace: bool,
    /// Switched vs shared-medium wire.
    pub topology: NetworkTopology,
}

impl SimConfig {
    /// Configuration from machine parameters, trace enabled, half-duplex,
    /// switched network.
    pub fn new(machine: MachineParams) -> Self {
        SimConfig {
            machine,
            duplex: false,
            wire_latency_us: 0.0,
            record_trace: true,
            topology: NetworkTopology::Switched,
        }
    }

    /// Builder: toggle duplex DMA.
    pub fn with_duplex(mut self, duplex: bool) -> Self {
        self.duplex = duplex;
        self
    }

    /// Builder: toggle trace recording.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Builder: set wire latency.
    pub fn with_wire_latency_us(mut self, us: f64) -> Self {
        self.wire_latency_us = us;
        self
    }

    /// Builder: set the network topology.
    pub fn with_topology(mut self, topology: NetworkTopology) -> Self {
        self.topology = topology;
        self
    }
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Per-rank completion time of the last operation.
    pub finish: Vec<SimTime>,
    /// Overall makespan (including lane drain).
    pub makespan: SimTime,
    /// The recorded trace (empty if disabled).
    pub trace: Trace,
}

impl SimResult {
    /// Makespan in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.makespan.as_secs()
    }
}

/// Simulation errors (deadlocks, protocol violations).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// No runnable rank and undelivered ops remain.
    Deadlock {
        /// Ranks stuck blocking, with their program counters.
        blocked: Vec<(Rank, usize)>,
    },
    /// A receive's byte count disagrees with the matched message.
    ByteMismatch {
        /// Receiving rank.
        rank: Rank,
        /// Expected bytes (receiver side).
        expected: u64,
        /// Actual bytes (sender side).
        actual: u64,
    },
    /// An op referenced a rank outside the simulation.
    BadRank {
        /// The referencing rank.
        rank: Rank,
        /// The out-of-range target.
        target: Rank,
    },
    /// A program failed static validation.
    InvalidProgram {
        /// The offending rank.
        rank: Rank,
        /// Description.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { blocked } => write!(f, "deadlock; blocked ranks: {blocked:?}"),
            SimError::ByteMismatch {
                rank,
                expected,
                actual,
            } => write!(f, "rank {rank}: recv of {expected} B matched {actual} B"),
            SimError::BadRank { rank, target } => {
                write!(f, "rank {rank} references invalid rank {target}")
            }
            SimError::InvalidProgram { rank, detail } => {
                write!(f, "rank {rank}: invalid program: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Why a rank is suspended.
#[derive(Clone, Copy, Debug)]
enum Blocked {
    /// In `Wait` on a receive request that hasn't completed.
    OnReq(ReqId),
    /// In a blocking `Recv` with no matching message yet.
    OnRecv { from: Rank, tag: u64, bytes: u64 },
}

#[derive(Clone, Copy, Debug)]
enum ReqState {
    /// Completed (possibly in the future relative to the CPU).
    Done(SimTime),
    /// A posted receive not yet matched.
    PendingRecv,
    /// A posted send whose NIC transmission hasn't been booked yet.
    PendingSend,
}

#[derive(Default)]
struct RankState {
    pc: usize,
    /// Time the CPU becomes available / the program has advanced to.
    now: SimTime,
    blocked: Option<Blocked>,
    tx_free: SimTime,
    rx_free: SimTime,
    reqs: HashMap<ReqId, ReqState>,
    /// Arrived-but-unmatched messages: (ready time, bytes) FIFO per key.
    arrived: HashMap<(Rank, u64), VecDeque<(SimTime, u64)>>,
    /// Posted-but-unmatched receive requests, FIFO per key.
    posted: HashMap<(Rank, u64), VecDeque<(ReqId, u64)>>,
    done: bool,
}

/// A queued event.
///
/// The engine executes **one op per `Run` event** and books NIC-lane
/// time through dedicated `TxEnqueue`/`NicArrival` events, so every
/// lane reservation happens in exact wall-clock order — a rank cannot
/// claim its NIC "in the future" ahead of a message that arrives
/// earlier.
#[derive(Debug)]
enum Ev {
    /// Execute the next op of a rank's program.
    Run(Rank),
    /// A non-blocking send's payload is ready for the TX lane (`A₁`
    /// finished on the CPU).
    TxEnqueue {
        src: Rank,
        dst: Rank,
        tag: u64,
        bytes: u64,
        req: ReqId,
    },
    /// A non-blocking message reaches the destination NIC (RX lane next).
    NicArrival {
        dst: Rank,
        src: Rank,
        tag: u64,
        bytes: u64,
    },
    /// A blocking-send message is delivered directly (no RX lane).
    DirectDelivery {
        dst: Rank,
        src: Rank,
        tag: u64,
        bytes: u64,
    },
}

struct QueueItem {
    time: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The simulator.
pub struct Engine {
    cfg: SimConfig,
    programs: Vec<Program>,
    ranks: Vec<RankState>,
    queue: BinaryHeap<Reverse<QueueItem>>,
    seq: u64,
    trace: Trace,
    /// Shared-medium wire availability (used only with
    /// [`NetworkTopology::SharedBus`]).
    bus_free: SimTime,
    /// Per-rank relative compute speeds (heterogeneous fleet). Programs
    /// carry *baseline* microseconds; a rank with factor `s` executes a
    /// `Compute` op in `us / s`. Lives on the engine rather than
    /// [`SimConfig`] because the config is `Copy` and the fleet is not.
    speeds: NodeSpeeds,
}

impl Engine {
    /// Create an engine over one program per rank.
    pub fn new(cfg: SimConfig, programs: Vec<Program>) -> Result<Self, SimError> {
        let n = programs.len();
        for (rank, p) in programs.iter().enumerate() {
            if let Err(e) = p.validate() {
                return Err(SimError::InvalidProgram {
                    rank,
                    detail: e.to_string(),
                });
            }
            for op in p.ops() {
                let target = match *op {
                    Op::Send { to, .. } | Op::Isend { to, .. } => Some(to),
                    Op::Recv { from, .. } | Op::Irecv { from, .. } => Some(from),
                    _ => None,
                };
                if let Some(t) = target {
                    if t >= n {
                        return Err(SimError::BadRank { rank, target: t });
                    }
                }
            }
        }
        let mut ranks = Vec::with_capacity(n);
        ranks.resize_with(n, RankState::default);
        let trace = if cfg.record_trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        Ok(Engine {
            cfg,
            programs,
            ranks,
            queue: BinaryHeap::new(),
            seq: 0,
            trace,
            bus_free: SimTime::ZERO,
            speeds: NodeSpeeds::uniform(0),
        })
    }

    /// Builder: install per-rank compute-speed factors. Ranks beyond the
    /// recorded fleet run at the baseline speed (factor 1.0), so an
    /// empty [`NodeSpeeds`] (the default) is the homogeneous paper
    /// cluster.
    pub fn with_node_speeds(mut self, speeds: NodeSpeeds) -> Self {
        self.speeds = speeds;
        self
    }

    fn push(&mut self, time: SimTime, ev: Ev) {
        let item = QueueItem {
            time,
            seq: self.seq,
            ev,
        };
        self.seq += 1;
        self.queue.push(Reverse(item));
    }

    /// Run to completion.
    pub fn run(mut self) -> Result<SimResult, SimError> {
        for r in 0..self.ranks.len() {
            self.push(SimTime::ZERO, Ev::Run(r));
        }
        while let Some(Reverse(item)) = self.queue.pop() {
            match item.ev {
                Ev::Run(rank) => self.advance(rank)?,
                Ev::TxEnqueue {
                    src,
                    dst,
                    tag,
                    bytes,
                    req,
                } => {
                    // Book B₃ (kernel fill) then B₄ (wire) on the TX lane
                    // (or the shared NIC) at the exact moment the CPU
                    // finished filling the MPI buffer. On a shared-bus
                    // network the wire segment additionally serializes
                    // against every other transmission in the cluster.
                    let m = &self.cfg.machine;
                    let b3 = SimTime::from_us(m.fill_kernel_buffer.eval(bytes as f64));
                    let b4 = SimTime::from_us(m.transmit_us(bytes as f64));
                    let lane_free = if self.cfg.duplex {
                        self.ranks[src].tx_free
                    } else {
                        self.ranks[src].tx_free.max(self.ranks[src].rx_free)
                    };
                    let start = lane_free.max(item.time);
                    let fill_done = start + b3;
                    let wire_start = match self.cfg.topology {
                        NetworkTopology::Switched => fill_done,
                        NetworkTopology::SharedBus => fill_done.max(self.bus_free),
                    };
                    let tx_done = wire_start + b4;
                    if self.cfg.topology == NetworkTopology::SharedBus {
                        self.bus_free = tx_done;
                    }
                    self.ranks[src].tx_free = tx_done;
                    if !self.cfg.duplex {
                        self.ranks[src].rx_free = tx_done;
                    }
                    self.trace.record(src, Activity::TxBusy, start, tx_done);
                    // Local completion: the send buffer is reusable.
                    self.ranks[src].reqs.insert(req, ReqState::Done(tx_done));
                    if let Some(Blocked::OnReq(wr)) = self.ranks[src].blocked {
                        if wr == req {
                            let resume = self.ranks[src].now.max(tx_done);
                            self.trace
                                .record(src, Activity::Idle, self.ranks[src].now, resume);
                            self.ranks[src].now = resume;
                            self.ranks[src].blocked = None;
                            self.ranks[src].pc += 1;
                            self.push(resume, Ev::Run(src));
                        }
                    }
                    let arrive = tx_done + SimTime::from_us(self.cfg.wire_latency_us);
                    self.push(
                        arrive,
                        Ev::NicArrival {
                            dst,
                            src,
                            tag,
                            bytes,
                        },
                    );
                }
                Ev::NicArrival {
                    dst,
                    src,
                    tag,
                    bytes,
                } => {
                    // RX lane processing: wire receive (B₁) + kernel copy (B₂).
                    let m = &self.cfg.machine;
                    let b1b2 = SimTime::from_us(
                        m.transmit_us(bytes as f64) + m.fill_kernel_buffer.eval(bytes as f64),
                    );
                    let lane_free = if self.cfg.duplex {
                        self.ranks[dst].rx_free
                    } else {
                        // Half-duplex: share with TX.
                        self.ranks[dst].rx_free.max(self.ranks[dst].tx_free)
                    };
                    let start = lane_free.max(item.time);
                    let ready = start + b1b2;
                    self.ranks[dst].rx_free = ready;
                    if !self.cfg.duplex {
                        self.ranks[dst].tx_free = ready;
                    }
                    self.trace.record(dst, Activity::RxBusy, start, ready);
                    self.deliver(dst, src, tag, bytes, ready)?;
                }
                Ev::DirectDelivery {
                    dst,
                    src,
                    tag,
                    bytes,
                } => {
                    self.deliver(dst, src, tag, bytes, item.time)?;
                }
            }
        }
        // All events drained: every rank must have finished.
        let blocked: Vec<(Rank, usize)> = self
            .ranks
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .map(|(r, s)| (r, s.pc))
            .collect();
        if !blocked.is_empty() {
            return Err(SimError::Deadlock { blocked });
        }
        let finish: Vec<SimTime> = self.ranks.iter().map(|s| s.now).collect();
        let mut makespan = SimTime::ZERO;
        for s in &self.ranks {
            makespan = makespan.max(s.now).max(s.tx_free).max(s.rx_free);
        }
        Ok(SimResult {
            finish,
            makespan,
            trace: self.trace,
        })
    }

    /// A message is fully delivered at `ready`: match it or queue it.
    fn deliver(
        &mut self,
        dst: Rank,
        src: Rank,
        tag: u64,
        bytes: u64,
        ready: SimTime,
    ) -> Result<(), SimError> {
        // A blocking receiver waiting on exactly this key resumes first.
        if let Some(Blocked::OnRecv {
            from,
            tag: wtag,
            bytes: wbytes,
        }) = self.ranks[dst].blocked
        {
            if from == src && wtag == tag {
                if wbytes != bytes {
                    return Err(SimError::ByteMismatch {
                        rank: dst,
                        expected: wbytes,
                        actual: bytes,
                    });
                }
                // Resume: CPU pays the blocking-receive copy path after
                // the later of (arrival, block start).
                let resume = self.ranks[dst].now.max(ready);
                self.trace
                    .record(dst, Activity::Idle, self.ranks[dst].now, resume);
                let copy = SimTime::from_us(self.cfg.machine.startup_us(bytes as f64));
                self.trace
                    .record(dst, Activity::BlockingRecv, resume, resume + copy);
                self.ranks[dst].now = resume + copy;
                self.ranks[dst].blocked = None;
                self.ranks[dst].pc += 1;
                let t = self.ranks[dst].now;
                self.push(t, Ev::Run(dst));
                return Ok(());
            }
        }
        // A posted Irecv?
        if let Some(q) = self.ranks[dst].posted.get_mut(&(src, tag)) {
            if let Some((req, wbytes)) = q.pop_front() {
                if q.is_empty() {
                    self.ranks[dst].posted.remove(&(src, tag));
                }
                if wbytes != bytes {
                    return Err(SimError::ByteMismatch {
                        rank: dst,
                        expected: wbytes,
                        actual: bytes,
                    });
                }
                self.ranks[dst].reqs.insert(req, ReqState::Done(ready));
                // If the rank is parked in Wait on this request, resume it.
                if let Some(Blocked::OnReq(wr)) = self.ranks[dst].blocked {
                    if wr == req {
                        let resume = self.ranks[dst].now.max(ready);
                        self.trace
                            .record(dst, Activity::Idle, self.ranks[dst].now, resume);
                        self.ranks[dst].now = resume;
                        self.ranks[dst].blocked = None;
                        self.ranks[dst].pc += 1; // past the Wait
                        self.push(resume, Ev::Run(dst));
                    }
                }
                return Ok(());
            }
        }
        // Nobody asked yet: buffer eagerly.
        self.ranks[dst]
            .arrived
            .entry((src, tag))
            .or_default()
            .push_back((ready, bytes));
        Ok(())
    }

    /// Execute the next op of a rank's program (one op per `Run` event,
    /// so resource bookings stay in wall-clock order), scheduling the
    /// follow-up `Run` unless the rank blocked or finished.
    fn advance(&mut self, rank: Rank) -> Result<(), SimError> {
        if self.ranks[rank].done || self.ranks[rank].blocked.is_some() {
            return Ok(());
        }
        let pc = self.ranks[rank].pc;
        if pc >= self.programs[rank].len() {
            self.ranks[rank].done = true;
            return Ok(());
        }
        let op = self.programs[rank].ops()[pc].clone();
        let m = self.cfg.machine;
        match op {
            Op::Compute { us, .. } => {
                let start = self.ranks[rank].now;
                let end = start + SimTime::from_us(us / self.speeds.factor(rank));
                self.trace.record(rank, Activity::Compute, start, end);
                self.ranks[rank].now = end;
                self.ranks[rank].pc += 1;
                self.push(end, Ev::Run(rank));
            }
            Op::Isend {
                to,
                tag,
                bytes,
                req,
            } => {
                // A₁ on the CPU; the NIC booking happens at `cpu_done`
                // via a TxEnqueue event so it can't jump the wall clock.
                let start = self.ranks[rank].now;
                let a1 = SimTime::from_us(m.fill_mpi_buffer.eval(bytes as f64));
                let cpu_done = start + a1;
                self.trace.record(rank, Activity::PostSend, start, cpu_done);
                self.ranks[rank].now = cpu_done;
                self.ranks[rank].reqs.insert(req, ReqState::PendingSend);
                self.ranks[rank].pc += 1;
                self.push(
                    cpu_done,
                    Ev::TxEnqueue {
                        src: rank,
                        dst: to,
                        tag,
                        bytes,
                        req,
                    },
                );
                self.push(cpu_done, Ev::Run(rank));
            }
            Op::Irecv {
                from,
                tag,
                bytes,
                req,
            } => {
                // A₃ on the CPU.
                let start = self.ranks[rank].now;
                let a3 = SimTime::from_us(m.fill_mpi_buffer.eval(bytes as f64));
                let cpu_done = start + a3;
                self.trace.record(rank, Activity::PostRecv, start, cpu_done);
                self.ranks[rank].now = cpu_done;
                // Early arrival?
                let matched = self.ranks[rank]
                    .arrived
                    .get_mut(&(from, tag))
                    .and_then(VecDeque::pop_front);
                if let Some((ready, abytes)) = matched {
                    if abytes != bytes {
                        return Err(SimError::ByteMismatch {
                            rank,
                            expected: bytes,
                            actual: abytes,
                        });
                    }
                    self.ranks[rank].reqs.insert(req, ReqState::Done(ready));
                } else {
                    self.ranks[rank].reqs.insert(req, ReqState::PendingRecv);
                    self.ranks[rank]
                        .posted
                        .entry((from, tag))
                        .or_default()
                        .push_back((req, bytes));
                }
                self.ranks[rank].pc += 1;
                self.push(cpu_done, Ev::Run(rank));
            }
            Op::Wait { req } => match self.ranks[rank].reqs.get(&req) {
                Some(ReqState::Done(at)) => {
                    let at = *at;
                    let now = self.ranks[rank].now;
                    if at > now {
                        self.trace.record(rank, Activity::Idle, now, at);
                        self.ranks[rank].now = at;
                    }
                    self.ranks[rank].pc += 1;
                    let t = self.ranks[rank].now;
                    self.push(t, Ev::Run(rank));
                }
                Some(ReqState::PendingRecv) | Some(ReqState::PendingSend) => {
                    // Resumed by deliver() or the TxEnqueue handler.
                    self.ranks[rank].blocked = Some(Blocked::OnReq(req));
                }
                None => {
                    return Err(SimError::InvalidProgram {
                        rank,
                        detail: format!("wait on unknown request {req:?}"),
                    });
                }
            },
            Op::Send { to, tag, bytes } => {
                // Blocking send: the CPU pays both fills and the wire
                // time (Fig. 7), then the message travels. On a shared
                // bus the wire portion also waits for the medium.
                let start = self.ranks[rank].now;
                let fills_done = start + SimTime::from_us(m.startup_us(bytes as f64));
                let wire_start = match self.cfg.topology {
                    NetworkTopology::Switched => fills_done,
                    NetworkTopology::SharedBus => fills_done.max(self.bus_free),
                };
                let end = wire_start + SimTime::from_us(m.transmit_us(bytes as f64));
                if self.cfg.topology == NetworkTopology::SharedBus {
                    self.bus_free = end;
                }
                self.trace.record(rank, Activity::BlockingSend, start, end);
                self.ranks[rank].now = end;
                let arrive = end + SimTime::from_us(self.cfg.wire_latency_us);
                self.push(
                    arrive,
                    Ev::DirectDelivery {
                        dst: to,
                        src: rank,
                        tag,
                        bytes,
                    },
                );
                self.ranks[rank].pc += 1;
                self.push(end, Ev::Run(rank));
            }
            Op::Recv { from, tag, bytes } => {
                let matched = self.ranks[rank]
                    .arrived
                    .get_mut(&(from, tag))
                    .and_then(VecDeque::pop_front);
                if let Some((ready, abytes)) = matched {
                    if abytes != bytes {
                        return Err(SimError::ByteMismatch {
                            rank,
                            expected: bytes,
                            actual: abytes,
                        });
                    }
                    let now = self.ranks[rank].now;
                    let resume = now.max(ready);
                    self.trace.record(rank, Activity::Idle, now, resume);
                    let copy = SimTime::from_us(m.startup_us(bytes as f64));
                    self.trace
                        .record(rank, Activity::BlockingRecv, resume, resume + copy);
                    self.ranks[rank].now = resume + copy;
                    self.ranks[rank].pc += 1;
                    let t = self.ranks[rank].now;
                    self.push(t, Ev::Run(rank));
                } else {
                    self.ranks[rank].blocked = Some(Blocked::OnRecv { from, tag, bytes });
                    // Resumed by deliver().
                }
            }
        }
        Ok(())
    }
}

/// Convenience: build and run in one call.
pub fn simulate(cfg: SimConfig, programs: Vec<Program>) -> Result<SimResult, SimError> {
    Engine::new(cfg, programs)?.run()
}

/// Convenience: build and run with a heterogeneous fleet.
pub fn simulate_heterogeneous(
    cfg: SimConfig,
    programs: Vec<Program>,
    speeds: NodeSpeeds,
) -> Result<SimResult, SimError> {
    Engine::new(cfg, programs)?.with_node_speeds(speeds).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A machine with clean constants for hand-checkable arithmetic:
    /// fills are 10 µs flat each (so blocking startup = 20 µs), wire is
    /// 0.01 µs/B, compute 1 µs per unit.
    fn toy_machine() -> MachineParams {
        use tiling_core::machine::AffineCost;
        MachineParams {
            t_c_us: 1.0,
            t_s_us: 20.0,
            t_t_us_per_byte: 0.01,
            bytes_per_elem: 4,
            fill_mpi_buffer: AffineCost::constant(10.0),
            fill_kernel_buffer: AffineCost::constant(10.0),
            transfer_curve: None,
        }
    }

    fn cfg() -> SimConfig {
        SimConfig::new(toy_machine())
    }

    #[test]
    fn single_rank_compute_only() {
        let mut p = Program::new();
        p.compute(100.0, 0);
        p.compute(50.0, 1);
        let r = simulate(cfg(), vec![p]).unwrap();
        assert_eq!(r.makespan, SimTime::from_us(150.0));
        assert_eq!(r.finish[0], SimTime::from_us(150.0));
    }

    #[test]
    fn blocking_pair_cost_matches_eq3() {
        // Sender: Send(100 B). Receiver: Recv.
        // Sender CPU: startup 20 + wire 1.0 = 21 µs.
        // Receiver: message arrives at 21, then pays startup 20 ⇒ 41 µs.
        let mut s = Program::new();
        s.send(1, 0, 100);
        let mut r = Program::new();
        r.recv(0, 0, 100);
        let res = simulate(cfg(), vec![s, r]).unwrap();
        assert_eq!(res.finish[0], SimTime::from_us(21.0));
        assert_eq!(res.finish[1], SimTime::from_us(41.0));
    }

    #[test]
    fn blocking_recv_posted_late_still_works() {
        // Receiver computes 100 µs first; message waits buffered.
        let mut s = Program::new();
        s.send(1, 0, 100);
        let mut r = Program::new();
        r.compute(100.0, 0);
        r.recv(0, 0, 100);
        let res = simulate(cfg(), vec![s, r]).unwrap();
        // Arrived at 21 < 100; recv pays 20 after its compute.
        assert_eq!(res.finish[1], SimTime::from_us(120.0));
    }

    #[test]
    fn nonblocking_overlap_hides_communication() {
        // Sender: Isend(1000 B) then compute 100 µs then wait.
        // A₁ = 10; TX = B₃(10) + B₄(10) = 20 from t=10 to 30.
        // CPU: 10 + 100 = 110; wait(send) done at 30 ⇒ finish 110.
        let mut s = Program::new();
        let q = s.isend(1, 0, 1000);
        s.compute(100.0, 0);
        s.wait(q);
        // Receiver: Irecv + compute + wait.
        // A₃ = 10; RX starts at arrival 30: B₁(10)+B₂(10) ⇒ ready 50.
        // CPU: 10 + 100 = 110 ≥ 50 ⇒ finish 110: full overlap.
        let mut r = Program::new();
        let q2 = r.irecv(0, 0, 1000);
        r.compute(100.0, 0);
        r.wait(q2);
        let res = simulate(cfg(), vec![s, r]).unwrap();
        assert_eq!(res.finish[0], SimTime::from_us(110.0));
        assert_eq!(res.finish[1], SimTime::from_us(110.0));
    }

    #[test]
    fn nonblocking_wait_blocks_until_delivery() {
        // Same as above but receiver computes only 5 µs: must idle
        // until RX completes at 50.
        let mut s = Program::new();
        let q = s.isend(1, 0, 1000);
        s.compute(100.0, 0);
        s.wait(q);
        let mut r = Program::new();
        let q2 = r.irecv(0, 0, 1000);
        r.compute(5.0, 0);
        r.wait(q2);
        let res = simulate(cfg(), vec![s, r]).unwrap();
        assert_eq!(res.finish[1], SimTime::from_us(50.0));
    }

    #[test]
    fn wait_on_send_request_idles_until_tx_done() {
        let mut s = Program::new();
        let q = s.isend(1, 0, 1000);
        s.wait(q); // CPU at 10, TX done at 30 ⇒ idle 20.
        let mut r = Program::new();
        let q2 = r.irecv(0, 0, 1000);
        r.wait(q2);
        let res = simulate(cfg(), vec![s, r]).unwrap();
        assert_eq!(res.finish[0], SimTime::from_us(30.0));
    }

    #[test]
    fn half_duplex_serializes_tx_and_rx() {
        // Two ranks exchange 1000 B simultaneously with Isend/Irecv.
        // Half-duplex: each NIC does TX (20) then RX (20) serially.
        let mk = |other: Rank| {
            let mut p = Program::new();
            let sq = p.isend(other, 0, 1000);
            let rq = p.irecv(other, 0, 1000);
            p.wait(rq);
            p.wait(sq);
            p
        };
        let res_half = simulate(cfg(), vec![mk(1), mk(0)]).unwrap();
        let res_full = simulate(cfg().with_duplex(true), vec![mk(1), mk(0)]).unwrap();
        assert!(res_full.makespan <= res_half.makespan);
        // Full duplex: CPU posts 10+10=20; TX 10..30; arrival 30;
        // RX 30..50; wait recv done 50.
        assert_eq!(res_full.makespan, SimTime::from_us(50.0));
        // Half duplex: TX 10..30 on the shared lane; peer's message
        // arrives at 30 but lane busy until 30: RX 30..50 too — same
        // here because TX finished exactly at arrival.
        assert_eq!(res_half.makespan, SimTime::from_us(50.0));
    }

    #[test]
    fn half_duplex_rx_delays_pending_tx() {
        // Rank 0 receives a message and then wants to send: the shared
        // NIC forces RX then TX.
        let mut a = Program::new();
        let rq = a.irecv(1, 0, 1000);
        let sq = a.isend(1, 1, 1000);
        a.wait(rq);
        a.wait(sq);
        let mut b = Program::new();
        let sq2 = b.isend(0, 0, 1000);
        let rq2 = b.irecv(0, 1, 1000);
        b.wait(sq2);
        b.wait(rq2);
        let half = simulate(cfg(), vec![a.clone(), b.clone()]).unwrap();
        let full = simulate(cfg().with_duplex(true), vec![a, b]).unwrap();
        assert!(half.makespan >= full.makespan);
    }

    #[test]
    fn fifo_matching_same_tag() {
        // Two messages with the same (src, tag): matched in send order.
        let mut s = Program::new();
        s.send(1, 7, 100);
        s.send(1, 7, 100);
        let mut r = Program::new();
        r.recv(0, 7, 100);
        r.recv(0, 7, 100);
        let res = simulate(cfg(), vec![s, r]).unwrap();
        // Sender: 21 + 21 = 42. Messages arrive 21, 42.
        // Receiver: (wait 21, copy 20) = 41, then msg2 already at 42:
        // wait to 42, copy 20 ⇒ 62.
        assert_eq!(res.finish[1], SimTime::from_us(62.0));
    }

    #[test]
    fn byte_mismatch_detected() {
        let mut s = Program::new();
        s.send(1, 0, 100);
        let mut r = Program::new();
        r.recv(0, 0, 64);
        let err = simulate(cfg(), vec![s, r]).unwrap_err();
        assert!(matches!(err, SimError::ByteMismatch { .. }));
    }

    #[test]
    fn deadlock_detected() {
        // Both ranks receive first: classic deadlock (with blocking ops
        // and no messages in flight).
        let mut a = Program::new();
        a.recv(1, 0, 8);
        a.send(1, 0, 8);
        let mut b = Program::new();
        b.recv(0, 0, 8);
        b.send(0, 0, 8);
        let err = simulate(cfg(), vec![a, b]).unwrap_err();
        match err {
            SimError::Deadlock { blocked } => assert_eq!(blocked.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn bad_rank_detected() {
        let mut p = Program::new();
        p.send(5, 0, 8);
        let err = simulate(cfg(), vec![p]).unwrap_err();
        assert!(matches!(err, SimError::BadRank { target: 5, .. }));
    }

    #[test]
    fn invalid_program_detected() {
        let mut p = Program::new();
        p.wait(crate::program::ReqId(3));
        let err = simulate(cfg(), vec![p]).unwrap_err();
        assert!(matches!(err, SimError::InvalidProgram { .. }));
    }

    #[test]
    fn determinism() {
        // A small pipeline run twice gives identical traces.
        let build = || {
            let mut a = Program::new();
            let s1 = a.isend(1, 0, 500);
            a.compute(30.0, 0);
            a.wait(s1);
            let mut b = Program::new();
            let r1 = b.irecv(0, 0, 500);
            b.compute(10.0, 0);
            b.wait(r1);
            vec![a, b]
        };
        let x = simulate(cfg(), build()).unwrap();
        let y = simulate(cfg(), build()).unwrap();
        assert_eq!(x.makespan, y.makespan);
        assert_eq!(x.trace.intervals(), y.trace.intervals());
    }

    #[test]
    fn wire_latency_delays_delivery() {
        let mut s = Program::new();
        s.send(1, 0, 100);
        let mut r = Program::new();
        r.recv(0, 0, 100);
        let base = simulate(cfg(), vec![s.clone(), r.clone()]).unwrap();
        let lat = simulate(cfg().with_wire_latency_us(100.0), vec![s, r]).unwrap();
        assert_eq!(lat.finish[1], base.finish[1] + SimTime::from_us(100.0));
    }

    #[test]
    fn trace_disabled_still_times_correctly() {
        let mut p = Program::new();
        p.compute(10.0, 0);
        let res = simulate(cfg().with_trace(false), vec![p]).unwrap();
        assert!(res.trace.intervals().is_empty());
        assert_eq!(res.makespan, SimTime::from_us(10.0));
    }

    #[test]
    fn shared_bus_serializes_independent_transmissions() {
        // Two disjoint pairs send 2000 B concurrently. Switched: wires
        // run in parallel. Shared bus: the second wire waits.
        let build = || {
            let mk_sender = |dst: usize| {
                let mut p = Program::new();
                let q = p.isend(dst, 0, 2000);
                p.wait(q);
                p
            };
            let mk_recv = |src: usize| {
                let mut p = Program::new();
                let q = p.irecv(src, 0, 2000);
                p.wait(q);
                p
            };
            vec![mk_sender(2), mk_sender(3), mk_recv(0), mk_recv(1)]
        };
        let sw = simulate(
            cfg()
                .with_duplex(true)
                .with_topology(NetworkTopology::Switched),
            build(),
        )
        .unwrap();
        let bus = simulate(
            cfg()
                .with_duplex(true)
                .with_topology(NetworkTopology::SharedBus),
            build(),
        )
        .unwrap();
        // Wire time = 20 µs per message; the bus adds exactly one wire
        // slot of delay to the later message's delivery chain.
        assert!(bus.makespan > sw.makespan);
        assert_eq!(
            bus.makespan.as_us() - sw.makespan.as_us(),
            20.0,
            "bus {} vs switched {}",
            bus.makespan,
            sw.makespan
        );
    }

    #[test]
    fn shared_bus_single_message_unaffected() {
        let mut s = Program::new();
        let q = s.isend(1, 0, 1000);
        s.wait(q);
        let mut r = Program::new();
        let q2 = r.irecv(0, 0, 1000);
        r.wait(q2);
        let sw = simulate(cfg(), vec![s.clone(), r.clone()]).unwrap();
        let bus = simulate(cfg().with_topology(NetworkTopology::SharedBus), vec![s, r]).unwrap();
        assert_eq!(sw.makespan, bus.makespan);
    }

    #[test]
    fn shared_bus_blocking_sends_contend() {
        // Two blocking senders to two receivers: their wire times
        // serialize on the bus.
        let mk_s = |dst: usize| {
            let mut p = Program::new();
            p.send(dst, 0, 2000); // startup 20 + wire 20
            p
        };
        let mk_r = |src: usize| {
            let mut p = Program::new();
            p.recv(src, 0, 2000);
            p
        };
        let bus = simulate(
            cfg().with_topology(NetworkTopology::SharedBus),
            vec![mk_s(2), mk_s(3), mk_r(0), mk_r(1)],
        )
        .unwrap();
        // First sender: 0..40; second: fills 0..20, wire 40..60.
        let s_finish = bus.finish[0].max(bus.finish[1]);
        assert_eq!(s_finish, SimTime::from_us(60.0));
    }

    #[test]
    fn node_speed_scales_compute_only() {
        // Rank at 2× the baseline computes in half the time; posts,
        // fills and wire time are unchanged.
        let mut p = Program::new();
        p.compute(100.0, 0);
        p.compute(50.0, 1);
        let speeds = NodeSpeeds::from_factors(vec![2.0]).unwrap();
        let r = simulate_heterogeneous(cfg(), vec![p], speeds).unwrap();
        assert_eq!(r.makespan, SimTime::from_us(75.0));
    }

    #[test]
    fn uniform_speeds_match_baseline() {
        let build = || {
            let mut s = Program::new();
            let q = s.isend(1, 0, 1000);
            s.compute(100.0, 0);
            s.wait(q);
            let mut r = Program::new();
            let q2 = r.irecv(0, 0, 1000);
            r.compute(100.0, 0);
            r.wait(q2);
            vec![s, r]
        };
        let base = simulate(cfg(), build()).unwrap();
        let unif = simulate_heterogeneous(cfg(), build(), NodeSpeeds::uniform(2)).unwrap();
        assert_eq!(base.makespan, unif.makespan);
        assert_eq!(base.trace.intervals(), unif.trace.intervals());
    }

    #[test]
    fn slow_node_paces_blocking_pipeline() {
        // Sender computes then sends; a slow receiver does not delay
        // the sender, but a slow *sender* delays the receiver.
        let build = || {
            let mut s = Program::new();
            s.compute(100.0, 0);
            s.send(1, 0, 100);
            let mut r = Program::new();
            r.recv(0, 0, 100);
            vec![s, r]
        };
        let base = simulate(cfg(), build()).unwrap();
        let slow_sender = simulate_heterogeneous(
            cfg(),
            build(),
            NodeSpeeds::from_factors(vec![0.5, 1.0]).unwrap(),
        )
        .unwrap();
        // Sender's 100 µs compute doubles; everything downstream shifts.
        assert_eq!(
            slow_sender.finish[1],
            base.finish[1] + SimTime::from_us(100.0)
        );
    }

    #[test]
    fn seeded_speeds_are_deterministic() {
        let mk = || {
            let mut p = Program::new();
            p.compute(1000.0, 0);
            vec![p, Program::new()]
        };
        let s1 = NodeSpeeds::seeded(2, 42, 0.3);
        let s2 = NodeSpeeds::seeded(2, 42, 0.3);
        assert_eq!(s1, s2);
        let a = simulate_heterogeneous(cfg(), mk(), s1).unwrap();
        let b = simulate_heterogeneous(cfg(), mk(), s2).unwrap();
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn makespan_includes_lane_drain() {
        // Isend but never wait: program ends at CPU 10, TX drains to 30.
        let mut s = Program::new();
        let _ = s.isend(1, 0, 1000);
        let mut r = Program::new();
        let q = r.irecv(0, 0, 1000);
        r.wait(q);
        let res = simulate(cfg(), vec![s, r]).unwrap();
        assert_eq!(res.finish[0], SimTime::from_us(10.0));
        assert!(res.makespan >= SimTime::from_us(50.0));
    }
}
