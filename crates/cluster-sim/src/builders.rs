//! Program builders: unroll a tiled loop nest into per-rank message-
//! passing programs, in both the paper's execution styles.
//!
//! * [`ClusterProblem::blocking_programs`] — the §3/§5 `ProcB` structure:
//!   per time step *receive → compute → send* with blocking primitives.
//! * [`ClusterProblem::overlapping_programs`] — the §4/§5 `ProcNB`
//!   structure: post `Irecv`s for step `k+1` and `Isend`s of step `k−1`
//!   results, compute tile `k`, then wait — communication rides the
//!   NIC/DMA lanes under the computation.
//!
//! Layout follows the paper's experiments: the tiled space's cross-
//! section (all dimensions except the mapping one) *is* the processor
//! grid — one line of tiles per processor. Messages are grouped per
//! neighboring processor (one send per neighbor per step, §1: "data
//! exchanges are grouped and performed with a single message for each
//! neighboring processor"), with exact byte counts even for boundary
//! tiles clipped by the iteration space.

use crate::program::{Program, Rank, ReqId};
use tiling_core::dependence::DependenceSet;
use tiling_core::machine::{MachineParams, NodeSpeeds};
use tiling_core::mapping::ProcessorMapping;
use tiling_core::space::IterationSpace;
use tiling_core::tiling::Tiling;

/// Errors constructing a [`ClusterProblem`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// Only axis-aligned rectangular tilings can be laid out on the
    /// processor grid this builder targets.
    NotRectangular,
    /// The tiling is illegal or a dependence does not fit in one tile.
    BadTiling(String),
    /// Arity mismatch between space, tiling and dependences.
    ArityMismatch,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NotRectangular => write!(f, "tiling must be axis-aligned rectangular"),
            BuildError::BadTiling(d) => write!(f, "bad tiling: {d}"),
            BuildError::ArityMismatch => write!(f, "arity mismatch"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A tiled loop nest laid out on a processor grid, ready to be unrolled
/// into per-rank simulator programs.
#[derive(Clone, Debug)]
pub struct ClusterProblem {
    tiling: Tiling,
    deps: DependenceSet,
    space: IterationSpace,
    mapping: ProcessorMapping,
    tiled: IterationSpace,
    /// Sorted distinct non-zero processor offsets tiles send to.
    proc_offsets: Vec<Vec<i64>>,
}

impl ClusterProblem {
    /// Lay out `space` tiled by `tiling` with processor mapping along
    /// `mapping_dim`.
    pub fn new(
        tiling: Tiling,
        deps: DependenceSet,
        space: IterationSpace,
        mapping_dim: usize,
    ) -> Result<Self, BuildError> {
        if tiling.dims() != space.dims() || deps.dims() != space.dims() {
            return Err(BuildError::ArityMismatch);
        }
        if tiling.rectangular_sides().is_none() {
            return Err(BuildError::NotRectangular);
        }
        tiling
            .check_contains(&deps)
            .map_err(|e| BuildError::BadTiling(e.to_string()))?;
        let tiled = tiling.tiled_space(&space);
        let mapping = ProcessorMapping::along(space.dims(), mapping_dim);
        let tile_deps = tiling.tile_dependences(&deps);
        let mut proc_offsets: Vec<Vec<i64>> = tile_deps
            .iter()
            .map(|d| mapping.processor_of(d.components()))
            .filter(|p| p.iter().any(|&x| x != 0))
            .collect();
        proc_offsets.sort();
        proc_offsets.dedup();
        Ok(ClusterProblem {
            tiling,
            deps,
            space,
            mapping,
            tiled,
            proc_offsets,
        })
    }

    /// Lay out with the paper's default mapping (longest tiled dimension).
    pub fn with_longest_mapping(
        tiling: Tiling,
        deps: DependenceSet,
        space: IterationSpace,
    ) -> Result<Self, BuildError> {
        let tiled = tiling.tiled_space(&space);
        let dim = tiled.longest_dimension();
        ClusterProblem::new(tiling, deps, space, dim)
    }

    /// The paper's §5 methodology in one call: given a processor grid
    /// over the non-mapping dimensions, choose the tile cross-section so
    /// that exactly one tile column lands on each processor (experiment
    /// iii used 8×8 tiles to fold a 32×32 space onto the same 4×4 grid),
    /// with tile height `v` along `mapping_dim`.
    pub fn for_processor_grid(
        deps: DependenceSet,
        space: IterationSpace,
        mapping_dim: usize,
        proc_grid: &[i64],
        v: i64,
    ) -> Result<Self, BuildError> {
        if mapping_dim >= space.dims() || proc_grid.len() + 1 != space.dims() {
            return Err(BuildError::ArityMismatch);
        }
        let mut sides = Vec::with_capacity(space.dims());
        let mut ci = 0;
        for d in 0..space.dims() {
            if d == mapping_dim {
                sides.push(v);
            } else {
                let procs = proc_grid[ci];
                ci += 1;
                if procs <= 0 || space.extent(d) % procs != 0 {
                    return Err(BuildError::BadTiling(format!(
                        "extent {} of dimension {d} not divisible by {procs} processors",
                        space.extent(d)
                    )));
                }
                sides.push(space.extent(d) / procs);
            }
        }
        ClusterProblem::new(Tiling::rectangular(&sides), deps, space, mapping_dim)
    }

    /// Number of ranks (the tiled cross-section size).
    pub fn ranks(&self) -> usize {
        self.mapping.processor_count(&self.tiled) as usize
    }

    /// Number of pipeline steps per rank (tiles along the mapping dim).
    pub fn steps(&self) -> i64 {
        self.tiled.extent(self.mapping.mapping_dim())
    }

    /// A deterministic heterogeneous fleet sized to this problem:
    /// [`NodeSpeeds::seeded`] with one factor per rank. `spread = 0`
    /// yields the homogeneous paper cluster.
    pub fn node_speeds(&self, seed: u64, spread: f64) -> NodeSpeeds {
        NodeSpeeds::seeded(self.ranks(), seed, spread)
    }

    /// The tiled space.
    pub fn tiled_space(&self) -> &IterationSpace {
        &self.tiled
    }

    /// The processor mapping.
    pub fn mapping(&self) -> &ProcessorMapping {
        &self.mapping
    }

    /// The distinct neighbor processor offsets.
    pub fn proc_offsets(&self) -> &[Vec<i64>] {
        &self.proc_offsets
    }

    /// Full tile coordinates from (cross-section coords, mapping index).
    fn tile_at(&self, cross: &[i64], k: i64) -> Vec<i64> {
        let mdim = self.mapping.mapping_dim();
        let mut t = Vec::with_capacity(self.space.dims());
        let mut ci = 0;
        for d in 0..self.space.dims() {
            if d == mdim {
                t.push(self.tiled.lower()[mdim] + k);
            } else {
                t.push(cross[ci]);
                ci += 1;
            }
        }
        t
    }

    /// Per-dimension index range of `tile ∩ space`; `None` if empty.
    fn tile_ranges(&self, tile: &[i64]) -> Option<Vec<(i64, i64)>> {
        let sides = self.tiling.rectangular_sides().expect("rectangular");
        let mut out = Vec::with_capacity(tile.len());
        for d in 0..tile.len() {
            let lo = (tile[d] * sides[d]).max(self.space.lower()[d]);
            let hi = (tile[d] * sides[d] + sides[d] - 1).min(self.space.upper()[d]);
            if lo > hi {
                return None;
            }
            out.push((lo, hi));
        }
        Some(out)
    }

    /// Iteration points of a (possibly boundary-clipped) tile.
    pub fn tile_points(&self, tile: &[i64]) -> i64 {
        self.tile_ranges(tile)
            .map(|r| r.iter().map(|&(l, h)| h - l + 1).product())
            .unwrap_or(0)
    }

    /// Exact payload (in iteration points) of the grouped message sent by
    /// `sender_tile` to the processor at offset `q`: for each dependence
    /// `d` and each mapping-dimension advance `m ∈ {0,1}`, count the
    /// points of the sender tile whose consumer `j + d` lands in the tile
    /// at cross-offset `q`, mapping-offset `m`.
    pub fn message_points(&self, sender_tile: &[i64], q: &[i64]) -> i64 {
        let Some(a) = self.tile_ranges(sender_tile) else {
            return 0;
        };
        let mdim = self.mapping.mapping_dim();
        let mut total = 0i64;
        for m in 0..=1i64 {
            // Target tile coordinates.
            let mut b_tile = sender_tile.to_vec();
            let mut ci = 0;
            for (d, t) in b_tile.iter_mut().enumerate() {
                if d == mdim {
                    *t += m;
                } else {
                    *t += q[ci];
                    ci += 1;
                }
            }
            let Some(b) = self.tile_ranges(&b_tile) else {
                continue;
            };
            for dep in self.deps.iter() {
                let mut vol = 1i64;
                for d in 0..a.len() {
                    let (al, ah) = a[d];
                    let (bl, bh) = b[d];
                    let dd = dep.components()[d];
                    let lo = al.max(bl - dd);
                    let hi = ah.min(bh - dd);
                    if lo > hi {
                        vol = 0;
                        break;
                    }
                    vol *= hi - lo + 1;
                }
                total += vol;
            }
        }
        total
    }

    /// Message payload in bytes.
    fn message_bytes(&self, sender_tile: &[i64], q: &[i64], machine: &MachineParams) -> u64 {
        (self.message_points(sender_tile, q) as u64) * u64::from(machine.bytes_per_elem)
    }

    /// All cross-section coordinates in row-major rank order.
    fn cross_coords(&self) -> Vec<Vec<i64>> {
        let mdim = self.mapping.mapping_dim();
        let lowers: Vec<i64> = (0..self.space.dims())
            .filter(|&d| d != mdim)
            .map(|d| self.tiled.lower()[d])
            .collect();
        let uppers: Vec<i64> = (0..self.space.dims())
            .filter(|&d| d != mdim)
            .map(|d| self.tiled.upper()[d])
            .collect();
        if lowers.is_empty() {
            return vec![vec![]];
        }
        IterationSpace::new(lowers, uppers).points().collect()
    }

    /// Rank of a cross-section coordinate (row-major), `None` if outside.
    fn rank_of_cross(&self, cross: &[i64]) -> Option<Rank> {
        let mdim = self.mapping.mapping_dim();
        let mut rank = 0usize;
        let mut ci = 0;
        for d in 0..self.space.dims() {
            if d == mdim {
                continue;
            }
            let lo = self.tiled.lower()[d];
            let hi = self.tiled.upper()[d];
            let c = cross[ci];
            if c < lo || c > hi {
                return None;
            }
            rank = rank * (hi - lo + 1) as usize + (c - lo) as usize;
            ci += 1;
        }
        Some(rank)
    }

    /// Message tag for (sender mapping-step `k`, neighbor-offset index).
    fn tag(&self, k: i64, qi: usize) -> u64 {
        (k as u64) * self.proc_offsets.len() as u64 + qi as u64
    }

    /// Build the blocking (`ProcB`) program of every rank.
    pub fn blocking_programs(&self, machine: &MachineParams) -> Vec<Program> {
        let steps = self.steps();
        let mut programs = Vec::with_capacity(self.ranks());
        for cross in self.cross_coords() {
            let mut p = Program::new();
            for k in 0..steps {
                let tile = self.tile_at(&cross, k);
                // Receive from every in-neighbor that actually sends.
                for (qi, q) in self.proc_offsets.iter().enumerate() {
                    let src_cross: Vec<i64> = cross.iter().zip(q).map(|(&c, &o)| c - o).collect();
                    let Some(src) = self.rank_of_cross(&src_cross) else {
                        continue;
                    };
                    let sender_tile = self.tile_at(&src_cross, k);
                    let bytes = self.message_bytes(&sender_tile, q, machine);
                    if bytes > 0 {
                        p.recv(src, self.tag(k, qi), bytes);
                    }
                }
                let points = self.tile_points(&tile);
                if points > 0 {
                    p.compute(machine.tile_compute_us(points), k as u64);
                }
                // Send to every out-neighbor.
                for (qi, q) in self.proc_offsets.iter().enumerate() {
                    let dst_cross: Vec<i64> = cross.iter().zip(q).map(|(&c, &o)| c + o).collect();
                    let Some(dst) = self.rank_of_cross(&dst_cross) else {
                        continue;
                    };
                    let bytes = self.message_bytes(&tile, q, machine);
                    if bytes > 0 {
                        p.send(dst, self.tag(k, qi), bytes);
                    }
                }
            }
            programs.push(p);
        }
        programs
    }

    /// Build the overlapping (`ProcNB`) program of every rank.
    ///
    /// Structure per pipeline step `k` (after a prologue posting the
    /// receives for step 0):
    ///
    /// 1. post `Irecv`s for the inputs of tile `k+1`,
    /// 2. post `Isend`s of the results of tile `k−1`,
    /// 3. wait the receives for tile `k`, compute tile `k`,
    /// 4. wait the sends of tile `k−1` (buffers reusable).
    pub fn overlapping_programs(&self, machine: &MachineParams) -> Vec<Program> {
        let steps = self.steps();
        let mut programs = Vec::with_capacity(self.ranks());
        for cross in self.cross_coords() {
            let mut p = Program::new();
            // Request bookkeeping per step.
            let mut recv_reqs: Vec<Vec<ReqId>> = vec![Vec::new(); steps as usize];
            let post_recvs = |p: &mut Program, k: i64, reqs: &mut Vec<Vec<ReqId>>| {
                for (qi, q) in self.proc_offsets.iter().enumerate() {
                    let src_cross: Vec<i64> = cross.iter().zip(q).map(|(&c, &o)| c - o).collect();
                    let Some(src) = self.rank_of_cross(&src_cross) else {
                        continue;
                    };
                    let sender_tile = self.tile_at(&src_cross, k);
                    let bytes = self.message_bytes(&sender_tile, q, machine);
                    if bytes > 0 {
                        let r = p.irecv(src, self.tag(k, qi), bytes);
                        reqs[k as usize].push(r);
                    }
                }
            };
            let post_sends = |p: &mut Program, k: i64| -> Vec<ReqId> {
                let tile = self.tile_at(&cross, k);
                let mut reqs = Vec::new();
                for (qi, q) in self.proc_offsets.iter().enumerate() {
                    let dst_cross: Vec<i64> = cross.iter().zip(q).map(|(&c, &o)| c + o).collect();
                    let Some(dst) = self.rank_of_cross(&dst_cross) else {
                        continue;
                    };
                    let bytes = self.message_bytes(&tile, q, machine);
                    if bytes > 0 {
                        reqs.push(p.isend(dst, self.tag(k, qi), bytes));
                    }
                }
                reqs
            };

            // Prologue: receives for step 0.
            post_recvs(&mut p, 0, &mut recv_reqs);
            let mut prev_send_reqs: Vec<ReqId> = Vec::new();
            for k in 0..steps {
                if k + 1 < steps {
                    post_recvs(&mut p, k + 1, &mut recv_reqs);
                }
                if k >= 1 {
                    prev_send_reqs = post_sends(&mut p, k - 1);
                }
                for &r in &recv_reqs[k as usize] {
                    p.wait(r);
                }
                let points = self.tile_points(&self.tile_at(&cross, k));
                if points > 0 {
                    p.compute(machine.tile_compute_us(points), k as u64);
                }
                for &r in std::mem::take(&mut prev_send_reqs).iter() {
                    p.wait(r);
                }
            }
            // Epilogue: ship the last tile's results.
            for r in post_sends(&mut p, steps - 1) {
                p.wait(r);
            }
            programs.push(p);
        }
        programs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};

    fn toy_machine() -> MachineParams {
        use tiling_core::machine::AffineCost;
        MachineParams {
            t_c_us: 1.0,
            t_s_us: 20.0,
            t_t_us_per_byte: 0.01,
            bytes_per_elem: 4,
            fill_mpi_buffer: AffineCost::constant(10.0),
            fill_kernel_buffer: AffineCost::constant(10.0),
            transfer_curve: None,
        }
    }

    fn small_2d() -> ClusterProblem {
        // 12×20 space, 3×5 tiles ⇒ tiled 4×4; map along dim 1 (ties
        // broken explicitly).
        ClusterProblem::new(
            Tiling::rectangular(&[3, 5]),
            DependenceSet::units(2),
            IterationSpace::from_extents(&[12, 20]),
            1,
        )
        .unwrap()
    }

    #[test]
    fn layout_basics() {
        let p = small_2d();
        assert_eq!(p.ranks(), 4);
        assert_eq!(p.steps(), 4);
        assert_eq!(p.proc_offsets(), &[vec![1]]);
    }

    #[test]
    fn message_points_interior_and_boundary() {
        let p = small_2d();
        // Interior tile (1, 1): sends its i-face (5 wide? no —
        // dep e1 crosses dim-0 boundary): message to proc offset (1)
        // is the dim-0 face: 5 points (tile is 3×5, face 1×5).
        assert_eq!(p.message_points(&[1, 1], &[1]), 5);
        // Last tile row (3, _) has no consumer beyond: the message
        // would leave the space.
        assert_eq!(p.message_points(&[3, 1], &[1]), 0);
    }

    #[test]
    fn message_points_clipped_tile() {
        // Space 11×20 with 3×5 tiles: last dim-0 tile row is 2 deep.
        let p = ClusterProblem::new(
            Tiling::rectangular(&[3, 5]),
            DependenceSet::units(2),
            IterationSpace::from_extents(&[11, 20]),
            1,
        )
        .unwrap();
        // Tile (2,0) spans i ∈ 6..8, full; sends 5-point face to (3,0)
        // which spans i ∈ 9..10 (clipped but present).
        assert_eq!(p.message_points(&[2, 0], &[1]), 5);
        assert_eq!(p.message_points(&[3, 0], &[1]), 0);
    }

    #[test]
    fn tile_points_clipping() {
        let p = ClusterProblem::new(
            Tiling::rectangular(&[3, 5]),
            DependenceSet::units(2),
            IterationSpace::from_extents(&[11, 18]),
            1,
        )
        .unwrap();
        assert_eq!(p.tile_points(&[0, 0]), 15);
        assert_eq!(p.tile_points(&[3, 0]), 10); // 2×5
        assert_eq!(p.tile_points(&[3, 3]), 6); // 2×3
        assert_eq!(p.tile_points(&[4, 0]), 0);
    }

    #[test]
    fn programs_validate() {
        let p = small_2d();
        let m = toy_machine();
        for prog in p.blocking_programs(&m) {
            prog.validate().unwrap();
        }
        for prog in p.overlapping_programs(&m) {
            prog.validate().unwrap();
        }
    }

    #[test]
    fn blocking_simulation_completes() {
        let p = small_2d();
        let m = toy_machine();
        let res = simulate(SimConfig::new(m), p.blocking_programs(&m)).unwrap();
        assert!(res.makespan > crate::time::SimTime::ZERO);
    }

    #[test]
    fn overlapping_simulation_completes_and_beats_blocking() {
        // Make compute heavy enough that overlap can hide communication.
        let p = ClusterProblem::new(
            Tiling::rectangular(&[4, 50]),
            DependenceSet::units(2),
            IterationSpace::from_extents(&[16, 400]),
            1,
        )
        .unwrap();
        let m = toy_machine();
        let blocking = simulate(SimConfig::new(m), p.blocking_programs(&m)).unwrap();
        let overlap = simulate(SimConfig::new(m), p.overlapping_programs(&m)).unwrap();
        assert!(
            overlap.makespan < blocking.makespan,
            "overlap {} vs blocking {}",
            overlap.makespan,
            blocking.makespan
        );
    }

    #[test]
    fn three_dimensional_paper_layout() {
        // Miniature of the paper's experiment: 4×4 processor grid,
        // tiles 2×2×8 over an 8×8×64 space.
        let p = ClusterProblem::with_longest_mapping(
            Tiling::rectangular(&[2, 2, 8]),
            DependenceSet::paper_3d(),
            IterationSpace::from_extents(&[8, 8, 64]),
        )
        .unwrap();
        assert_eq!(p.ranks(), 16);
        assert_eq!(p.steps(), 8);
        assert_eq!(p.proc_offsets().len(), 2);
        let m = toy_machine();
        let blocking = simulate(SimConfig::new(m), p.blocking_programs(&m)).unwrap();
        let overlap = simulate(SimConfig::new(m), p.overlapping_programs(&m)).unwrap();
        assert!(overlap.makespan < blocking.makespan);
    }

    #[test]
    fn diagonal_dependences_grouped_per_processor() {
        // Example-1 structure: deps {(1,1),(1,0),(0,1)}, mapping along 0:
        // exactly one neighbor offset (+1 in the cross dim), messages
        // grouped.
        let p = ClusterProblem::new(
            Tiling::rectangular(&[10, 10]),
            DependenceSet::example_1(),
            IterationSpace::from_extents(&[100, 40]),
            0,
        )
        .unwrap();
        assert_eq!(p.proc_offsets(), &[vec![1]]);
        // Grouped message from an interior tile: (0,1) parts 10 + (1,1)
        // parts… d=(0,1): m=0 target (0,1): overlap dim0 = 10, dim1 = 1
        // ⇒ 10. d=(1,1): m=1 target (1,1): 1·1 = 1; m=0 target (0,1):
        // dim0 overlap for +1: j+1 ∈ same tile ⇒ 9, dim1 = 1 ⇒ 9.
        // d=(1,0): m=1 target (1,0)? cross part 0 ≠ q: not counted.
        // Total = 10 + 1 + 9 = 20 = V_comm of Example 1. ✓
        assert_eq!(p.message_points(&[1, 1], &[1]), 20);
        let m = toy_machine();
        let res = simulate(SimConfig::new(m), p.overlapping_programs(&m)).unwrap();
        assert!(res.makespan > crate::time::SimTime::ZERO);
    }

    #[test]
    fn single_rank_problem_runs() {
        // Mapping dimension = only extended dimension: one rank, no
        // messages at all.
        let p = ClusterProblem::new(
            Tiling::rectangular(&[4, 4]),
            DependenceSet::units(2),
            IterationSpace::from_extents(&[4, 64]),
            1,
        )
        .unwrap();
        assert_eq!(p.ranks(), 1);
        let m = toy_machine();
        let blocking = simulate(SimConfig::new(m), p.blocking_programs(&m)).unwrap();
        // 16 tiles × 16 points × 1 µs.
        assert_eq!(blocking.makespan, crate::time::SimTime::from_us(256.0));
    }

    #[test]
    fn for_processor_grid_matches_paper_layouts() {
        // Experiment i: 16×16×16384 on 4×4 ⇒ 4×4×V tiles.
        let p = ClusterProblem::for_processor_grid(
            DependenceSet::paper_3d(),
            IterationSpace::from_extents(&[16, 16, 16384]),
            2,
            &[4, 4],
            444,
        )
        .unwrap();
        assert_eq!(p.ranks(), 16);
        assert_eq!(p.tiled_space().extents()[..2], [4, 4]);
        // Experiment iii: 32×32×4096 on the same grid ⇒ 8×8×V tiles.
        let p3 = ClusterProblem::for_processor_grid(
            DependenceSet::paper_3d(),
            IterationSpace::from_extents(&[32, 32, 4096]),
            2,
            &[4, 4],
            164,
        )
        .unwrap();
        assert_eq!(p3.ranks(), 16);
        assert_eq!(p3.message_points(&[0, 0, 0], &[1, 0]), 8 * 164);
    }

    #[test]
    fn for_processor_grid_rejects_indivisible() {
        let err = ClusterProblem::for_processor_grid(
            DependenceSet::paper_3d(),
            IterationSpace::from_extents(&[15, 16, 128]),
            2,
            &[4, 4],
            16,
        )
        .unwrap_err();
        assert!(matches!(err, BuildError::BadTiling(_)));
    }

    #[test]
    fn rejects_non_rectangular() {
        use tiling_core::matrix::IntMatrix;
        let skew = Tiling::from_side_matrix(IntMatrix::from_rows(&[&[2, 1], &[0, 2]])).unwrap();
        let err = ClusterProblem::new(
            skew,
            DependenceSet::units(2),
            IterationSpace::from_extents(&[8, 8]),
            0,
        )
        .unwrap_err();
        assert_eq!(err, BuildError::NotRectangular);
    }

    #[test]
    fn rejects_uncontained_dependence() {
        let err = ClusterProblem::new(
            Tiling::rectangular(&[2, 2]),
            DependenceSet::from_vectors(2, vec![vec![3, 0]]),
            IterationSpace::from_extents(&[8, 8]),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, BuildError::BadTiling(_)));
    }

    #[test]
    fn overlap_schedule_length_matches_simulated_steps() {
        // With communication ≈ compute (UET-UCT regime), the simulated
        // makespan is close to P(g) · step where P(g) is the overlap
        // plane count — the pipeline is tight.
        use tiling_core::schedule::OverlapSchedule;
        let tiling = Tiling::rectangular(&[4, 16]);
        let deps = DependenceSet::units(2);
        let space = IterationSpace::from_extents(&[16, 256]);
        let p = ClusterProblem::new(tiling, deps, space, 1).unwrap();
        let m = toy_machine();
        let res = simulate(SimConfig::new(m), p.overlapping_programs(&m)).unwrap();
        let sched = OverlapSchedule::with_mapping(2, 1);
        let planes = sched.schedule_length(p.tiled_space());
        // Step cost lower bound: the compute alone (64 µs).
        let lower = planes as f64 * 64.0;
        assert!(res.makespan.as_us() >= 0.8 * lower);
    }
}
