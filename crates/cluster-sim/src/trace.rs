//! Execution traces: per-rank activity intervals, utilization statistics,
//! ASCII Gantt charts and CSV export.
//!
//! The Gantt rendering reproduces the structure of the paper's Fig. 1
//! (non-overlapping: striped receive/compute/send triplets) and Fig. 2
//! (overlapping: solid compute bars with communication hidden on the
//! DMA lanes).

use crate::program::Rank;
use crate::time::SimTime;
use std::fmt::Write as _;

/// What a rank (or one of its lanes) was doing during an interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Activity {
    /// CPU: tile computation.
    Compute,
    /// CPU: posting a non-blocking send (`A₁`, MPI buffer fill).
    PostSend,
    /// CPU: posting a non-blocking receive (`A₃`).
    PostRecv,
    /// CPU: a blocking send's full copy+transmit path.
    BlockingSend,
    /// CPU: a blocking receive's copy path (after arrival).
    BlockingRecv,
    /// CPU idle, waiting for a request or message.
    Idle,
    /// CPU idle past the configured stall threshold — a wait that
    /// should have been hidden by the schedule (or a fault-induced
    /// retry). Rendered prominently so stalls stand out in figures.
    Stall,
    /// NIC/DMA transmit lane busy (`B₃+B₄`).
    TxBusy,
    /// NIC/DMA receive lane busy (`B₁+B₂`).
    RxBusy,
}

impl Activity {
    /// Single-character glyph for Gantt rendering.
    pub fn glyph(&self) -> char {
        match self {
            Activity::Compute => '#',
            Activity::PostSend => 's',
            Activity::PostRecv => 'r',
            Activity::BlockingSend => 'S',
            Activity::BlockingRecv => 'R',
            Activity::Idle => '.',
            Activity::Stall => '!',
            Activity::TxBusy => '>',
            Activity::RxBusy => '<',
        }
    }

    /// True for activities that occupy the CPU.
    pub fn is_cpu(&self) -> bool {
        !matches!(
            self,
            Activity::TxBusy | Activity::RxBusy | Activity::Idle | Activity::Stall
        )
    }
}

/// One recorded interval.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Interval {
    /// The rank it belongs to.
    pub rank: Rank,
    /// Activity kind.
    pub activity: Activity,
    /// Start time.
    pub start: SimTime,
    /// End time (≥ start).
    pub end: SimTime,
}

/// A full simulation trace.
#[derive(Clone, Default, Debug)]
pub struct Trace {
    intervals: Vec<Interval>,
    enabled: bool,
}

impl Trace {
    /// A trace that records intervals.
    pub fn enabled() -> Self {
        Trace {
            intervals: Vec::new(),
            enabled: true,
        }
    }

    /// A trace that drops everything (for large simulations).
    pub fn disabled() -> Self {
        Trace {
            intervals: Vec::new(),
            enabled: false,
        }
    }

    /// Record an interval (no-op when disabled or empty).
    pub fn record(&mut self, rank: Rank, activity: Activity, start: SimTime, end: SimTime) {
        debug_assert!(end >= start, "interval ends before it starts");
        if self.enabled && end > start {
            self.intervals.push(Interval {
                rank,
                activity,
                start,
                end,
            });
        }
    }

    /// All recorded intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Absorb another trace's intervals (used to merge per-rank traces
    /// recorded on separate threads into one world trace). A disabled
    /// receiver stays empty.
    pub fn extend(&mut self, other: Trace) {
        if self.enabled {
            self.intervals.extend(other.intervals);
        }
    }

    /// Latest interval end — the natural horizon for rendering.
    pub fn horizon(&self) -> SimTime {
        self.intervals
            .iter()
            .map(|i| i.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Intervals of one rank, in recording order.
    pub fn for_rank(&self, rank: Rank) -> impl Iterator<Item = &Interval> {
        self.intervals.iter().filter(move |i| i.rank == rank)
    }

    /// Total CPU-busy time of a rank.
    pub fn cpu_busy(&self, rank: Rank) -> SimTime {
        let ns = self
            .for_rank(rank)
            .filter(|i| i.activity.is_cpu())
            .map(|i| (i.end - i.start).as_nanos())
            .sum();
        SimTime::from_nanos(ns)
    }

    /// Total compute-only time of a rank.
    pub fn compute_time(&self, rank: Rank) -> SimTime {
        let ns = self
            .for_rank(rank)
            .filter(|i| i.activity == Activity::Compute)
            .map(|i| (i.end - i.start).as_nanos())
            .sum();
        SimTime::from_nanos(ns)
    }

    /// CPU utilization of a rank over `[0, horizon]` (compute + posts).
    pub fn utilization(&self, rank: Rank, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.cpu_busy(rank).as_us() / horizon.as_us()
    }

    /// The narrowest ASCII Gantt chart [`Trace::gantt`] will render.
    pub const MIN_GANTT_WIDTH: usize = 10;

    /// Render an ASCII Gantt chart of CPU activities, `width` columns
    /// spanning `[0, horizon]`. One row per rank in `ranks`.
    ///
    /// Widths below [`Trace::MIN_GANTT_WIDTH`] are clamped up to it —
    /// this is reachable from CLI flags, so a too-small terminal is a
    /// rendering preference to correct, not a reason to panic.
    pub fn gantt(&self, ranks: &[Rank], horizon: SimTime, width: usize) -> String {
        let width = width.max(Self::MIN_GANTT_WIDTH);
        let mut out = String::new();
        let span = horizon.as_us().max(1e-9);
        for &rank in ranks {
            let mut row = vec!['.'; width];
            for iv in self.for_rank(rank) {
                // Stalls are idle time, but they are exactly what a
                // reader scans a chart for — draw them like CPU work.
                if !iv.activity.is_cpu() && iv.activity != Activity::Stall {
                    continue;
                }
                let a = ((iv.start.as_us() / span) * width as f64).floor() as usize;
                let b = ((iv.end.as_us() / span) * width as f64).ceil() as usize;
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = iv.activity.glyph();
                }
            }
            let _ = writeln!(out, "P{rank:<3} |{}|", row.iter().collect::<String>());
        }
        let _ = writeln!(
            out,
            "      0{:>w$}",
            format!("{horizon}"),
            w = width.saturating_sub(1)
        );
        out
    }

    /// Render an SVG Gantt chart: one row per rank, CPU activities
    /// colored, NIC lanes as thin strips under each row. Suitable for
    /// embedding in documentation (the publication-quality Fig. 1/2).
    pub fn to_svg(&self, ranks: &[Rank], horizon: SimTime, width: u32) -> String {
        let row_h = 26u32;
        let lane_h = 6u32;
        let label_w = 46u32;
        // Same clamp rationale as `gantt`: anything narrower than the
        // label gutter would underflow the plot width below.
        let width = width.max(label_w + 18);
        let height = ranks.len() as u32 * (row_h + lane_h + 6) + 28;
        let span = horizon.as_us().max(1e-9);
        let x_of = |t: SimTime| label_w as f64 + t.as_us() / span * (width - label_w - 8) as f64;
        let color = |a: Activity| match a {
            Activity::Compute => "#4c78a8",
            Activity::PostSend => "#f58518",
            Activity::PostRecv => "#e45756",
            Activity::BlockingSend => "#b27900",
            Activity::BlockingRecv => "#9d5555",
            Activity::Idle => "#e8e8e8",
            Activity::Stall => "#d62728",
            Activity::TxBusy => "#72b7b2",
            Activity::RxBusy => "#54a24b",
        };
        let mut out = format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="monospace" font-size="11">"#
        );
        out.push('\n');
        for (row, &rank) in ranks.iter().enumerate() {
            let y = 8 + row as u32 * (row_h + lane_h + 6);
            out += &format!(
                r##"<text x="2" y="{}" fill="#333">P{rank}</text>"##,
                y + row_h / 2 + 4
            );
            out.push('\n');
            for iv in self.for_rank(rank) {
                let x0 = x_of(iv.start);
                let x1 = x_of(iv.end);
                let (yy, hh) = if iv.activity.is_cpu()
                    || iv.activity == Activity::Idle
                    || iv.activity == Activity::Stall
                {
                    (y, row_h)
                } else {
                    (y + row_h + 1, lane_h)
                };
                out += &format!(
                    r#"<rect x="{:.2}" y="{yy}" width="{:.2}" height="{hh}" fill="{}"><title>{:?} {}–{}</title></rect>"#,
                    x0,
                    (x1 - x0).max(0.5),
                    color(iv.activity),
                    iv.activity,
                    iv.start,
                    iv.end
                );
                out.push('\n');
            }
        }
        out += &format!(
            r##"<text x="{label_w}" y="{}" fill="#666">0 … {horizon}</text>"##,
            height - 8
        );
        out.push_str("\n</svg>\n");
        out
    }

    /// Export all intervals as CSV (`rank,activity,start_us,end_us`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("rank,activity,start_us,end_us\n");
        for iv in &self.intervals {
            let _ = writeln!(
                out,
                "{},{:?},{:.3},{:.3}",
                iv.rank,
                iv.activity,
                iv.start.as_us(),
                iv.end.as_us()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: f64) -> SimTime {
        SimTime::from_us(us)
    }

    #[test]
    fn record_and_query() {
        let mut tr = Trace::enabled();
        tr.record(0, Activity::Compute, t(0.0), t(10.0));
        tr.record(0, Activity::Idle, t(10.0), t(12.0));
        tr.record(1, Activity::Compute, t(0.0), t(4.0));
        assert_eq!(tr.intervals().len(), 3);
        assert_eq!(tr.for_rank(0).count(), 2);
        assert_eq!(tr.cpu_busy(0), t(10.0));
        assert_eq!(tr.compute_time(1), t(4.0));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::disabled();
        tr.record(0, Activity::Compute, t(0.0), t(10.0));
        assert!(tr.intervals().is_empty());
    }

    #[test]
    fn empty_intervals_dropped() {
        let mut tr = Trace::enabled();
        tr.record(0, Activity::Compute, t(5.0), t(5.0));
        assert!(tr.intervals().is_empty());
    }

    #[test]
    fn extend_merges_and_horizon_tracks_latest_end() {
        let mut a = Trace::enabled();
        a.record(0, Activity::Compute, t(0.0), t(10.0));
        let mut b = Trace::enabled();
        b.record(1, Activity::Compute, t(5.0), t(25.0));
        a.extend(b);
        assert_eq!(a.intervals().len(), 2);
        assert_eq!(a.horizon(), t(25.0));
        assert_eq!(Trace::enabled().horizon(), SimTime::ZERO);

        let mut off = Trace::disabled();
        let mut c = Trace::enabled();
        c.record(0, Activity::Compute, t(0.0), t(1.0));
        off.extend(c);
        assert!(off.intervals().is_empty());
    }

    #[test]
    fn utilization() {
        let mut tr = Trace::enabled();
        tr.record(0, Activity::Compute, t(0.0), t(50.0));
        assert!((tr.utilization(0, t(100.0)) - 0.5).abs() < 1e-12);
        assert_eq!(tr.utilization(0, SimTime::ZERO), 0.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let mut tr = Trace::enabled();
        tr.record(0, Activity::Compute, t(0.0), t(50.0));
        tr.record(1, Activity::Compute, t(50.0), t(100.0));
        tr.record(1, Activity::TxBusy, t(0.0), t(100.0)); // not CPU: hidden
        let g = tr.gantt(&[0, 1], t(100.0), 20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("P0"));
        assert!(lines[0].contains('#'));
        // Rank 1 computes in the second half only.
        let row1: String = lines[1].chars().collect();
        assert!(row1.contains('#'));
        assert!(row1.find('#').unwrap() > row1.len() / 2);
    }

    #[test]
    fn tiny_widths_clamp_instead_of_panicking() {
        // Both widths are CLI-reachable; a 1-column request renders at
        // the minimum instead of asserting.
        let mut tr = Trace::enabled();
        tr.record(0, Activity::Compute, t(0.0), t(50.0));
        let g = tr.gantt(&[0], t(100.0), 1);
        let wide = tr.gantt(&[0], t(100.0), Trace::MIN_GANTT_WIDTH);
        assert_eq!(g, wide);
        let svg = tr.to_svg(&[0], t(100.0), 1);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn svg_export_structure() {
        let mut tr = Trace::enabled();
        tr.record(0, Activity::Compute, t(0.0), t(50.0));
        tr.record(0, Activity::TxBusy, t(10.0), t(30.0));
        tr.record(1, Activity::Idle, t(0.0), t(20.0));
        let svg = tr.to_svg(&[0, 1], t(100.0), 600);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains(">P0</text>"));
        assert!(svg.contains(">P1</text>"));
        // Compute bar + NIC strip + idle bar = 3 rects.
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("#4c78a8")); // compute color
        assert!(svg.contains("#72b7b2")); // tx color
    }

    #[test]
    fn csv_export() {
        let mut tr = Trace::enabled();
        tr.record(2, Activity::PostSend, t(1.0), t(2.5));
        let csv = tr.to_csv();
        assert!(csv.starts_with("rank,activity,start_us,end_us"));
        assert!(csv.contains("2,PostSend,1.000,2.500"));
    }

    #[test]
    fn glyphs_distinct() {
        use Activity::*;
        let all = [
            Compute,
            PostSend,
            PostRecv,
            BlockingSend,
            BlockingRecv,
            Idle,
            Stall,
            TxBusy,
            RxBusy,
        ];
        let set: std::collections::HashSet<char> = all.iter().map(|a| a.glyph()).collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn stalls_render_in_gantt_and_svg() {
        let mut tr = Trace::enabled();
        tr.record(0, Activity::Compute, t(0.0), t(40.0));
        tr.record(0, Activity::Stall, t(40.0), t(100.0));
        assert!(!Activity::Stall.is_cpu());
        // ASCII: stalls draw even though they are not CPU work.
        let g = tr.gantt(&[0], t(100.0), 20);
        assert!(g.contains('!'), "{g}");
        // SVG: full-height bar in the stall color.
        let svg = tr.to_svg(&[0], t(100.0), 600);
        assert!(svg.contains("#d62728"), "{svg}");
        assert!(svg.contains("Stall"));
    }

    #[test]
    fn empty_trace_renders_without_panicking() {
        // Zero-step runs produce empty traces with a zero horizon; both
        // renderers must survive the degenerate time scale.
        let tr = Trace::enabled();
        assert_eq!(tr.horizon(), SimTime::ZERO);
        let g = tr.gantt(&[0, 1], tr.horizon(), 20);
        assert_eq!(g.lines().count(), 3); // two empty rows + axis
        assert!(g.lines().all(|l| !l.contains('#')));
        let svg = tr.to_svg(&[0, 1], tr.horizon(), 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 0);
        // CSV degenerates to just the header.
        assert_eq!(tr.to_csv(), "rank,activity,start_us,end_us\n");
    }

    #[test]
    fn single_interval_trace_renders() {
        let mut tr = Trace::enabled();
        tr.record(0, Activity::Compute, t(0.0), t(1.0));
        let g = tr.gantt(&[0], tr.horizon(), 10);
        // The lone interval fills the whole row.
        assert!(g.lines().next().unwrap().contains("##########"), "{g}");
        let svg = tr.to_svg(&[0], tr.horizon(), 400);
        assert_eq!(svg.matches("<rect").count(), 1);
    }
}
