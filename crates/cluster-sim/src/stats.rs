//! Utilization statistics over simulation traces.
//!
//! §4 of the paper claims the overlapping schedule yields "theoretically
//! 100% processor utilization" — successive computations back to back,
//! with communication hidden on the DMA lanes. This module quantifies
//! that: per-rank busy/idle breakdowns and fleet summaries, computed
//! from recorded traces.

use crate::engine::SimResult;
use crate::program::Rank;
use crate::time::SimTime;
use crate::trace::Activity;

/// Per-rank activity breakdown.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankStats {
    /// The rank.
    pub rank: Rank,
    /// Pure tile computation (µs).
    pub compute_us: f64,
    /// Non-blocking posting costs `A₁ + A₃` (µs).
    pub post_us: f64,
    /// Blocking send/receive CPU time (µs).
    pub blocking_comm_us: f64,
    /// Recorded idle (waiting) time (µs).
    pub idle_us: f64,
    /// Completion time of the rank's program (µs).
    pub finish_us: f64,
    /// CPU busy fraction of the rank's own finish time.
    pub utilization: f64,
    /// Fraction of CPU-busy time spent computing (vs copying buffers).
    pub compute_fraction: f64,
}

/// Compute per-rank statistics from a traced simulation result.
pub fn rank_stats(result: &SimResult) -> Vec<RankStats> {
    let ranks = result.finish.len();
    let mut out = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        let mut compute = 0.0;
        let mut post = 0.0;
        let mut blocking = 0.0;
        let mut idle = 0.0;
        for iv in result.trace.for_rank(rank) {
            let dur = (iv.end - iv.start).as_us();
            match iv.activity {
                Activity::Compute => compute += dur,
                Activity::PostSend | Activity::PostRecv => post += dur,
                Activity::BlockingSend | Activity::BlockingRecv => blocking += dur,
                Activity::Idle | Activity::Stall => idle += dur,
                Activity::TxBusy | Activity::RxBusy => {}
            }
        }
        let finish = result.finish[rank].as_us();
        let busy = compute + post + blocking;
        out.push(RankStats {
            rank,
            compute_us: compute,
            post_us: post,
            blocking_comm_us: blocking,
            idle_us: idle,
            finish_us: finish,
            utilization: if finish > 0.0 { busy / finish } else { 0.0 },
            compute_fraction: if busy > 0.0 { compute / busy } else { 0.0 },
        });
    }
    out
}

/// Fleet-level summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Mean per-rank CPU utilization.
    pub mean_utilization: f64,
    /// Minimum per-rank CPU utilization.
    pub min_utilization: f64,
    /// Maximum per-rank CPU utilization.
    pub max_utilization: f64,
    /// Mean fraction of busy time spent computing.
    pub mean_compute_fraction: f64,
    /// Makespan (µs).
    pub makespan_us: f64,
}

/// Summarize a full result; `None` for a zero-rank result.
///
/// This used to `assert!` on empty input, which aborted whole sweep
/// batches when a degenerate config produced no ranks. An absent
/// summary is data, not a crash.
pub fn summarize(result: &SimResult) -> Option<Summary> {
    let stats = rank_stats(result);
    if stats.is_empty() {
        return None;
    }
    let n = stats.len() as f64;
    Some(Summary {
        mean_utilization: stats.iter().map(|s| s.utilization).sum::<f64>() / n,
        min_utilization: stats
            .iter()
            .map(|s| s.utilization)
            .fold(f64::INFINITY, f64::min),
        max_utilization: stats.iter().map(|s| s.utilization).fold(0.0, f64::max),
        mean_compute_fraction: stats.iter().map(|s| s.compute_fraction).sum::<f64>() / n,
        makespan_us: result.makespan.as_us(),
    })
}

/// `summarize` of a result with no ranks is `None`, not a panic.
#[cfg(test)]
mod empty_tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn empty_result_summarizes_to_none() {
        let empty = SimResult {
            finish: Vec::new(),
            makespan: SimTime::ZERO,
            trace: Trace::disabled(),
        };
        assert_eq!(summarize(&empty), None);
    }
}

/// Markdown table of per-rank statistics.
pub fn stats_markdown(stats: &[RankStats]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "| rank | compute (ms) | posts (ms) | blocking comm (ms) | idle (ms) | utilization | compute share |\n|---|---|---|---|---|---|---|\n",
    );
    for s in stats {
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.0}% | {:.0}% |",
            s.rank,
            s.compute_us / 1e3,
            s.post_us / 1e3,
            s.blocking_comm_us / 1e3,
            s.idle_us / 1e3,
            s.utilization * 100.0,
            s.compute_fraction * 100.0
        );
    }
    out
}

/// Convenience: the horizon for utilization comparisons (makespan).
pub fn horizon(result: &SimResult) -> SimTime {
    result.makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::ClusterProblem;
    use crate::engine::{simulate, SimConfig};
    use tiling_core::machine::MachineParams;
    use tiling_core::prelude::*;

    fn problem() -> ClusterProblem {
        ClusterProblem::new(
            Tiling::rectangular(&[4, 4, 64]),
            DependenceSet::paper_3d(),
            IterationSpace::from_extents(&[8, 8, 1024]),
            2,
        )
        .unwrap()
    }

    #[test]
    fn overlap_utilization_beats_blocking() {
        // The Fig. 2 claim: the pipelined schedule keeps CPUs busier.
        let machine = MachineParams::paper_cluster();
        let cfg = SimConfig::new(machine);
        let b = simulate(cfg, problem().blocking_programs(&machine)).unwrap();
        let o = simulate(cfg, problem().overlapping_programs(&machine)).unwrap();
        let sb = summarize(&b).expect("non-empty fleet");
        let so = summarize(&o).expect("non-empty fleet");
        // Blocking counts copies as "busy" too, so compare the *compute*
        // fraction of the makespan instead: overlap packs strictly more
        // computation per wall-clock unit.
        let compute_rate_b =
            rank_stats(&b).iter().map(|s| s.compute_us).sum::<f64>() / sb.makespan_us;
        let compute_rate_o =
            rank_stats(&o).iter().map(|s| s.compute_us).sum::<f64>() / so.makespan_us;
        assert!(
            compute_rate_o > compute_rate_b,
            "overlap {compute_rate_o} vs blocking {compute_rate_b}"
        );
        // And the overlap compute share of busy time is near 1 (the
        // posts are small next to the tile computation).
        assert!(so.mean_compute_fraction > 0.5, "{so:?}");
    }

    #[test]
    fn stats_accounting_sums() {
        let machine = MachineParams::paper_cluster();
        let cfg = SimConfig::new(machine);
        let res = simulate(cfg, problem().overlapping_programs(&machine)).unwrap();
        for s in rank_stats(&res) {
            // busy + idle ≤ finish (the gap is time blocked without a
            // recorded idle interval, which deliver() always records, so
            // equality within rounding is expected for this program).
            let busy = s.compute_us + s.post_us + s.blocking_comm_us;
            assert!(busy <= s.finish_us + 1e-6, "{s:?}");
            assert!(s.utilization <= 1.0 + 1e-9);
            assert!((0.0..=1.0 + 1e-9).contains(&s.compute_fraction));
        }
    }

    #[test]
    fn markdown_renders() {
        let machine = MachineParams::paper_cluster();
        let cfg = SimConfig::new(machine);
        let res = simulate(cfg, problem().overlapping_programs(&machine)).unwrap();
        let md = stats_markdown(&rank_stats(&res));
        assert!(md.contains("| rank |"));
        assert!(md.lines().count() >= 3);
    }

    #[test]
    fn summary_bounds() {
        let machine = MachineParams::paper_cluster();
        let cfg = SimConfig::new(machine);
        let res = simulate(cfg, problem().overlapping_programs(&machine)).unwrap();
        let s = summarize(&res).expect("non-empty fleet");
        assert!(s.min_utilization <= s.mean_utilization);
        assert!(s.mean_utilization <= s.max_utilization);
        assert!(s.max_utilization <= 1.0 + 1e-9);
        assert!(s.makespan_us > 0.0);
    }
}
