//! Simulation time.
//!
//! Simulated time is kept in integer **nanoseconds** so the event queue
//! has a total order with no floating-point tie ambiguity; the paper's
//! quantities (µs, ms, s) convert losslessly at the boundaries.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From (non-negative, finite) microseconds, rounding to nanoseconds.
    ///
    /// # Panics
    /// Panics on negative, NaN or non-finite input.
    pub fn from_us(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid duration: {us}");
        SimTime((us * 1_000.0).round() as u64)
    }

    /// Nanoseconds since start.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Microseconds since start.
    pub fn as_us(&self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since start.
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<SimTime> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimTime> for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("negative sim duration"))
    }
}

fn fmt_human(t: &SimTime, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let us = t.as_us();
    if us >= 1_000_000.0 {
        write!(f, "{:.4}s", t.as_secs())
    } else if us >= 1_000.0 {
        write!(f, "{:.3}ms", us / 1_000.0)
    } else {
        write!(f, "{us:.3}µs")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_human(self, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_human(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_us(123.456);
        assert_eq!(t.as_nanos(), 123_456);
        assert!((t.as_us() - 123.456).abs() < 1e-9);
        assert!((t.as_secs() - 123.456e-6).abs() < 1e-15);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a + b, SimTime::from_nanos(140));
        assert_eq!(a - b, SimTime::from_nanos(60));
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_nanos(140));
    }

    #[test]
    #[should_panic(expected = "negative sim duration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_us_panics() {
        let _ = SimTime::from_us(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [SimTime::from_nanos(5),
            SimTime::ZERO,
            SimTime::from_nanos(3)];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_nanos(5));
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", SimTime::from_us(1.5)), "1.500µs");
        assert_eq!(format!("{}", SimTime::from_us(2500.0)), "2.500ms");
        assert_eq!(format!("{}", SimTime::from_us(3_000_000.0)), "3.0000s");
    }
}
