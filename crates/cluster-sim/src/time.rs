//! Simulation time.
//!
//! Simulated time is kept in integer **nanoseconds** so the event queue
//! has a total order with no floating-point tie ambiguity; the paper's
//! quantities (µs, ms, s) convert losslessly at the boundaries.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Why a floating-point duration cannot become a [`SimTime`].
///
/// Before this type, `SimTime::from_us` silently **saturated** huge
/// inputs (`(us * 1_000.0) as u64` clamps at `u64::MAX`), so an
/// extreme sweep cost model produced a quietly-wrong makespan instead
/// of an error. The checked constructors below surface all three
/// failure modes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TimeError {
    /// NaN or ±∞ microseconds.
    NonFinite(f64),
    /// Negative microseconds (durations are magnitudes).
    Negative(f64),
    /// The duration exceeds `u64::MAX` nanoseconds (~584 years).
    Overflow(f64),
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::NonFinite(us) => write!(f, "non-finite duration: {us} µs"),
            TimeError::Negative(us) => write!(f, "negative duration: {us} µs"),
            TimeError::Overflow(us) => {
                write!(f, "duration overflows u64 nanoseconds: {us} µs")
            }
        }
    }
}

impl std::error::Error for TimeError {}

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time (`u64::MAX` nanoseconds).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Checked conversion from microseconds, rounding to nanoseconds.
    ///
    /// Rejects NaN/∞, negative values and anything whose nanosecond
    /// count does not fit in `u64` — the failure modes the panicking
    /// [`SimTime::from_us`] used to saturate or abort on.
    pub fn try_from_us(us: f64) -> Result<Self, TimeError> {
        if !us.is_finite() {
            return Err(TimeError::NonFinite(us));
        }
        if us < 0.0 {
            return Err(TimeError::Negative(us));
        }
        let ns = (us * 1_000.0).round();
        // `u64::MAX as f64` rounds up to 2^64; any finite f64 strictly
        // below it is exactly representable as a u64.
        if ns >= u64::MAX as f64 {
            return Err(TimeError::Overflow(us));
        }
        Ok(SimTime(ns as u64))
    }

    /// From (non-negative, finite) microseconds, rounding to nanoseconds.
    ///
    /// # Panics
    /// Panics on negative, NaN, non-finite or overflowing input; use
    /// [`SimTime::try_from_us`] where the input is untrusted.
    pub fn from_us(us: f64) -> Self {
        match Self::try_from_us(us) {
            Ok(t) => t,
            Err(e) => panic!("invalid duration: {e}"),
        }
    }

    /// Checked addition; `None` when the sum exceeds [`SimTime::MAX`].
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Nanoseconds since start.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Microseconds since start.
    pub fn as_us(&self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since start.
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<SimTime> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        self.checked_add(rhs).expect("sim time overflow")
    }
}

impl AddAssign<SimTime> for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("negative sim duration"))
    }
}

fn fmt_human(t: &SimTime, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let us = t.as_us();
    if us >= 1_000_000.0 {
        write!(f, "{:.4}s", t.as_secs())
    } else if us >= 1_000.0 {
        write!(f, "{:.3}ms", us / 1_000.0)
    } else {
        write!(f, "{us:.3}µs")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_human(self, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_human(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_us(123.456);
        assert_eq!(t.as_nanos(), 123_456);
        assert!((t.as_us() - 123.456).abs() < 1e-9);
        assert!((t.as_secs() - 123.456e-6).abs() < 1e-15);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a + b, SimTime::from_nanos(140));
        assert_eq!(a - b, SimTime::from_nanos(60));
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_nanos(140));
    }

    #[test]
    #[should_panic(expected = "negative sim duration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_us_panics() {
        let _ = SimTime::from_us(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_nanos(5),
            SimTime::ZERO,
            SimTime::from_nanos(3),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_nanos(5));
    }

    #[test]
    fn checked_conversion_boundaries() {
        // Largest whole-µs value that still fits: u64::MAX ns ≈
        // 1.8446744e13 µs. One safe decade below converts cleanly...
        let big_ok = 1.0e12_f64;
        let t = SimTime::try_from_us(big_ok).expect("fits in u64 nanos");
        assert_eq!(t.as_nanos(), 1_000_000_000_000_000);
        // ...while anything at or past 2^64 ns errors instead of
        // saturating (the old `as u64` clamped to u64::MAX here).
        let over = (u64::MAX as f64) / 1_000.0 * 2.0;
        assert_eq!(SimTime::try_from_us(over), Err(TimeError::Overflow(over)));
        assert_eq!(
            SimTime::try_from_us(f64::INFINITY),
            Err(TimeError::NonFinite(f64::INFINITY))
        );
        assert_eq!(SimTime::try_from_us(-0.5), Err(TimeError::Negative(-0.5)));
        assert!(matches!(
            SimTime::try_from_us(f64::NAN),
            Err(TimeError::NonFinite(_))
        ));
        assert_eq!(SimTime::try_from_us(0.0), Ok(SimTime::ZERO));
    }

    #[test]
    fn checked_add_boundaries() {
        let almost = SimTime::from_nanos(u64::MAX - 1);
        let one = SimTime::from_nanos(1);
        assert_eq!(almost.checked_add(one), Some(SimTime::MAX));
        assert_eq!(SimTime::MAX.checked_add(one), None);
        assert_eq!(SimTime::MAX.checked_add(SimTime::ZERO), Some(SimTime::MAX));
    }

    #[test]
    #[should_panic(expected = "sim time overflow")]
    fn add_overflow_panics() {
        let _ = SimTime::MAX + SimTime::from_nanos(1);
    }

    #[test]
    #[should_panic(expected = "overflows u64 nanoseconds")]
    fn from_us_overflow_panics() {
        let _ = SimTime::from_us(1.0e18);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", SimTime::from_us(1.5)), "1.500µs");
        assert_eq!(format!("{}", SimTime::from_us(2500.0)), "2.500ms");
        assert_eq!(format!("{}", SimTime::from_us(3_000_000.0)), "3.0000s");
    }
}
