//! # cluster-sim
//!
//! A deterministic discrete-event simulator of a message-passing cluster,
//! built as the experimental substrate for reproducing
//!
//! > Goumas, Sotiropoulos, Koziris, *Minimizing Completion Time for Loop
//! > Tiling with Computation and Communication Overlapping*, IPPS 2001.
//!
//! The paper's measurements ran on 16 Pentium-III nodes with MPICH over
//! FastEthernet. This crate replaces that hardware with a simulator that
//! charges exactly the costs of the paper's timing model (§4, Fig. 4/5):
//! CPU-side MPI buffer fills (`A₁`, `A₃`), computation (`A₂`),
//! kernel-buffer copies (`B₂`, `B₃`) and wire time (`B₁`, `B₄`) on
//! separate NIC/DMA lanes, with configurable half/full-duplex behaviour.
//!
//! * [`program`] — per-rank op programs (`MPI_Send/Recv/Isend/Irecv/Wait`).
//! * [`engine`] — the event-driven interpreter.
//! * [`builders`] — unroll a tiled loop nest ([`tiling_core`]) into the
//!   paper's `ProcB` (blocking) and `ProcNB` (overlapping) programs.
//! * [`trace`] — activity traces, Gantt charts, utilization.
//!
//! ```
//! use cluster_sim::prelude::*;
//! use tiling_core::prelude::*;
//!
//! // A miniature of the paper's experiment i: 4×4 processor grid,
//! // one tile column per processor, grain chosen so computation can
//! // hide the communication.
//! let problem = ClusterProblem::with_longest_mapping(
//!     Tiling::rectangular(&[2, 2, 64]),
//!     DependenceSet::paper_3d(),
//!     IterationSpace::from_extents(&[8, 8, 1024]),
//! ).unwrap();
//! let machine = MachineParams::paper_cluster();
//! let cfg = SimConfig::new(machine).with_trace(false);
//! let blocking = simulate(cfg, problem.blocking_programs(&machine)).unwrap();
//! let overlap = simulate(cfg, problem.overlapping_programs(&machine)).unwrap();
//! assert!(overlap.makespan < blocking.makespan);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builders;
pub mod engine;
pub mod program;
pub mod pseudocode;
pub mod stats;
pub mod time;
pub mod trace;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::builders::{BuildError, ClusterProblem};
    pub use crate::engine::{
        simulate, simulate_heterogeneous, Engine, NetworkTopology, SimConfig, SimError, SimResult,
    };
    pub use crate::program::{Op, Program, Rank, ReqId};
    pub use crate::pseudocode::{render_program, render_rank_listings};
    pub use crate::stats::{rank_stats, stats_markdown, summarize, RankStats, Summary};
    pub use crate::time::{SimTime, TimeError};
    pub use crate::trace::{Activity, Interval, Trace};
}
