//! Integration tests of NIC-lane contention and message-ordering
//! behaviour in the engine — the subtle cases the one-op-per-event
//! redesign exists for.

use cluster_sim::prelude::*;
use tiling_core::machine::{AffineCost, MachineParams};

/// Flat 10 µs fills, 0.01 µs/B wire, 1 µs/point compute.
fn toy() -> MachineParams {
    MachineParams {
        t_c_us: 1.0,
        t_s_us: 20.0,
        t_t_us_per_byte: 0.01,
        bytes_per_elem: 4,
        fill_mpi_buffer: AffineCost::constant(10.0),
        fill_kernel_buffer: AffineCost::constant(10.0),
        transfer_curve: None,
    }
}

/// Two senders to one receiver: the receiver's RX lane serializes the
/// deliveries, so the second message lands one RX slot later.
#[test]
fn rx_lane_serializes_concurrent_arrivals() {
    // Ranks 0 and 1 both Isend 1000 B to rank 2 at t = 0.
    let mk_sender = |dst: usize| {
        let mut p = Program::new();
        let q = p.isend(dst, 0, 1000);
        p.wait(q);
        p
    };
    let mut r = Program::new();
    let q1 = r.irecv(0, 0, 1000);
    let q2 = r.irecv(1, 0, 1000);
    r.wait(q1);
    r.wait(q2);
    let res = simulate(
        SimConfig::new(toy()).with_duplex(true),
        vec![mk_sender(2), mk_sender(2), r],
    )
    .unwrap();
    // Each sender: A₁ 10, TX 10+10 = 20 ⇒ arrivals at 30.
    // Receiver RX lane: first message 30..50, second 50..70.
    assert_eq!(res.finish[2], SimTime::from_us(70.0));
}

/// An early-arriving message must not be starved by a TX the receiver
/// posts *later in wall-clock time* on a shared half-duplex NIC.
#[test]
fn arrival_beats_later_tx_on_shared_nic() {
    // Rank 0 sends to rank 1 immediately. Rank 1 computes 25 µs, then
    // posts its own Isend (to rank 0) and waits for rank 0's message.
    // The arrival hits rank 1's NIC at t = 30; rank 1's TX is enqueued
    // at t = 35 (25 compute + 10 post). RX must win the lane.
    let mut a = Program::new();
    let qa = a.isend(1, 0, 1000);
    a.wait(qa);
    let ra = a.irecv(1, 1, 1000);
    a.wait(ra);
    let mut b = Program::new();
    let rb = b.irecv(0, 0, 1000);
    b.compute(25.0, 0);
    let qb = b.isend(0, 1, 1000);
    b.wait(rb);
    b.wait(qb);
    let res = simulate(SimConfig::new(toy()), vec![a, b]).unwrap();
    // Rank 1's RX: arrival 30, lane free (nothing booked before 30 —
    // the TX enqueue happens at 35) ⇒ RX 30..50; its TX then 50..70.
    // So rank 1's recv completes at 50, not after its own TX.
    assert_eq!(res.finish[1], SimTime::from_us(70.0));
    // Rank 0: TX done 30; its recv: rank 1's message TX 50..70 (shared
    // lane after RX) ⇒ arrival 70 ⇒ rank 0 RX 70..90.
    assert_eq!(res.finish[0], SimTime::from_us(90.0));
}

/// Messages with distinct tags from one sender still deliver FIFO
/// through the lanes but match by tag, regardless of posting order.
#[test]
fn tag_matching_is_order_independent() {
    let mut s = Program::new();
    let q1 = s.isend(1, 7, 400);
    let q2 = s.isend(1, 9, 400);
    s.wait(q1);
    s.wait(q2);
    let mut r = Program::new();
    // Post receives in reverse tag order.
    let b9 = r.irecv(0, 9, 400);
    let b7 = r.irecv(0, 7, 400);
    r.wait(b9);
    r.wait(b7);
    let res = simulate(SimConfig::new(toy()), vec![s, r]).unwrap();
    // Both must complete (no deadlock) — tag matching crossed correctly.
    assert!(res.finish[1] > SimTime::ZERO);
}

/// A rank blocked in Wait on a send request resumes when the TX lane
/// finishes, even if that is delayed by lane contention.
#[test]
fn wait_on_contended_send() {
    // Rank 0 posts two sends back-to-back and waits the second; the
    // second's TX queues behind the first.
    let mut s = Program::new();
    let _q1 = s.isend(1, 0, 4000);
    let q2 = s.isend(1, 1, 4000);
    s.wait(q2);
    let mut r = Program::new();
    let a = r.irecv(0, 0, 4000);
    let b = r.irecv(0, 1, 4000);
    r.wait(a);
    r.wait(b);
    let res = simulate(SimConfig::new(toy()).with_duplex(true), vec![s, r]).unwrap();
    // Posts: 0..10, 10..20. TX1: 10..60 (10 kernel + 40 wire),
    // TX2: 60..110. Wait(q2) resumes at 110.
    assert_eq!(res.finish[0], SimTime::from_us(110.0));
}

/// Determinism under heavy fan-in: many senders, one receiver, two
/// identical runs produce identical traces.
#[test]
fn deterministic_under_fan_in() {
    let build = || {
        let mut programs: Vec<Program> = (0..6)
            .map(|i| {
                let mut p = Program::new();
                p.compute(i as f64 * 3.0, 0);
                let q = p.isend(6, i as u64, 256 * (i as u64 + 1));
                p.wait(q);
                p
            })
            .collect();
        let mut r = Program::new();
        let reqs: Vec<_> = (0..6)
            .map(|i| r.irecv(i, i as u64, 256 * (i as u64 + 1)))
            .collect();
        for q in reqs {
            r.wait(q);
        }
        programs.push(r);
        programs
    };
    let x = simulate(SimConfig::new(toy()), build()).unwrap();
    let y = simulate(SimConfig::new(toy()), build()).unwrap();
    assert_eq!(x.makespan, y.makespan);
    assert_eq!(x.trace.intervals(), y.trace.intervals());
}

/// The half-duplex NIC is work-conserving: total lane busy time equals
/// the sum of per-message costs (no idle gaps are inserted between
/// queued jobs).
#[test]
fn shared_nic_work_conserving() {
    let mut s = Program::new();
    for t in 0..4 {
        let q = s.isend(1, t, 1000);
        s.wait(q);
    }
    let mut r = Program::new();
    for t in 0..4 {
        let q = r.irecv(0, t, 1000);
        r.wait(q);
    }
    let res = simulate(SimConfig::new(toy()), vec![s, r]).unwrap();
    // Sender TX busy: 4 × (10 + 10) = 80 µs total.
    let tx_busy: f64 = res
        .trace
        .for_rank(0)
        .filter(|iv| iv.activity == Activity::TxBusy)
        .map(|iv| (iv.end - iv.start).as_us())
        .sum();
    assert_eq!(tx_busy, 80.0);
    let rx_busy: f64 = res
        .trace
        .for_rank(1)
        .filter(|iv| iv.activity == Activity::RxBusy)
        .map(|iv| (iv.end - iv.start).as_us())
        .sum();
    assert_eq!(rx_busy, 80.0);
}
