//! Property: the tuner's incumbent is never worse than the closed-form
//! seed on the candidate set it evaluated — across pipeline depths
//! (partial-tile remainders included), heterogeneity spreads/seeds and
//! both schedules, on the deterministic simulator backend.

use autotune::{tune, Schedule, SimBackend, Surrogate, TuneConfig, TuneProblem};
use proptest::prelude::*;
use tiling_core::machine::MachineParams;

fn config() -> TuneConfig {
    TuneConfig {
        max_candidates: 8,
        ..TuneConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incumbent_never_worse_than_seed(
        nz in 64usize..1200,
        seed in 0u64..64,
        spread_pct in 0usize..4,
        overlap in proptest::bool::ANY,
    ) {
        let problem = TuneProblem { nx: 8, ny: 8, nz, pi: 2, pj: 2 };
        let schedule = if overlap { Schedule::Overlap } else { Schedule::Blocking };
        let backend = SimBackend {
            problem,
            machine: MachineParams::paper_cluster(),
            schedule,
            duplex: true,
            shared_bus: false,
            hetero_seed: seed,
            hetero_spread: spread_pct as f64 * 0.15,
        };
        let machine = MachineParams::paper_cluster();
        let out = tune(&problem, &machine, schedule, &backend, &Surrogate::ClosedForm, &config())
            .unwrap();
        // The invariant under test.
        prop_assert!(out.incumbent.makespan_us <= out.seed.makespan_us,
            "incumbent {} worse than seed {}", out.incumbent.makespan_us, out.seed.makespan_us);
        prop_assert!(out.speedup() >= 1.0);
        // The incumbent is the minimum of everything measured.
        let min = out.evaluated.iter().map(|m| m.makespan_us).fold(f64::INFINITY, f64::min);
        prop_assert_eq!(out.incumbent.makespan_us, min);
        // The seed is always the first evaluation.
        prop_assert_eq!(out.evaluated[0].candidate, out.seed.candidate);
        // Bookkeeping adds up: everything enumerated was measured,
        // cut by the surrogate, abandoned, or infeasible.
        prop_assert!(out.evaluated.len() + out.abandoned + out.infeasible <= out.enumerated);
    }
}
