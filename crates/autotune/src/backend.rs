//! Measurement backends: where a candidate's makespan comes from.
//!
//! [`ThreadBackend`] runs real calibration executions on the stencil
//! thread backend through compiled [`PlanArtifact`]s, compiling via a
//! shared [`Compiler`] (so repeated probes hit the plan cache) and
//! executing through a shared [`WorldPool`] (so calibration never
//! re-spawns worlds). Its checkpoint probe compiles a *prefix* of the
//! pipeline — the same candidate truncated to a few steps — and
//! extrapolates, which is what lets the tuner abandon slow candidates
//! without paying for a full run.
//!
//! [`SimBackend`] measures under the deterministic cluster simulator
//! instead — the only backend that can model heterogeneous
//! [`NodeSpeeds`](tiling_core::machine::NodeSpeeds) and measured
//! transfer curves, and the one the out-of-model acceptance rows in
//! `BENCH_stencil.json` are produced with (bit-reproducible runs make
//! a ≥5% win a stable CI assertion, not a race against wall-clock
//! noise).

use crate::candidates::{Candidate, Schedule, TuneProblem};
use cluster_sim::builders::ClusterProblem;
use cluster_sim::engine::{simulate_heterogeneous, NetworkTopology, SimConfig};
use cluster_sim::stats::summarize;
use msgpass::thread_backend::{LatencyModel, WorldConfig};
use msgpass::transport::TransportKind;
use planc::artifact::ExecOptions;
use planc::{Compiler, MachineSpec, PlanRequest, TuneMode, WorldPool};
use stencil::engine::ExecMode;
use tiling_core::dependence::DependenceSet;
use tiling_core::machine::MachineParams;
use tiling_core::tiling::Tiling;

/// Where a candidate's cost is measured.
pub trait MeasureBackend {
    /// Measured makespan of one full run of the candidate (µs).
    fn measure_us(&self, c: &Candidate) -> Result<f64, String>;

    /// Optional cheap probe: an *extrapolated* full-run estimate from a
    /// `checkpoint_steps`-step prefix (µs). `None` when the backend has
    /// no probe cheaper than a full run.
    fn checkpoint_us(&self, c: &Candidate, checkpoint_steps: usize) -> Option<Result<f64, String>> {
        let _ = (c, checkpoint_steps);
        None
    }

    /// Whether repeated measurements are bit-identical (lets the tuner
    /// skip best-of-N repetition and early abandon).
    fn deterministic(&self) -> bool {
        false
    }
}

/// Real thread-backend calibration through compiled plans.
pub struct ThreadBackend<'a> {
    /// The workload being tuned.
    pub problem: TuneProblem,
    /// Machine model the plans are compiled against.
    pub machine: MachineSpec,
    /// Schedule mode of the calibration plans.
    pub mode: ExecMode,
    /// Wire implementation of the calibration plans.
    pub transport: TransportKind,
    /// Shared compiler: repeated probes of one candidate are cache hits.
    pub compiler: &'a Compiler,
    /// Shared warm-world pool: calibration never re-spawns worlds.
    pub pool: &'a WorldPool,
}

impl ThreadBackend<'_> {
    /// The calibration request for a candidate over a pipeline of
    /// depth `nz` (the full problem or a checkpoint prefix). Tagged
    /// [`TuneMode::Calibration`] so probe plans never collide with
    /// ordinary plans for the same coordinates in the shared cache.
    fn request(&self, c: &Candidate, nz: usize) -> PlanRequest {
        PlanRequest::grid3(self.problem.nx, self.problem.ny, nz, c.pi, c.pj)
            .with_v(c.v.min(nz))
            .with_mode(self.mode)
            .with_machine(self.machine)
            .with_transport(self.transport)
            .with_tier(c.tier)
            .with_tune(TuneMode::Calibration)
    }

    fn run(&self, c: &Candidate, nz: usize) -> Result<f64, String> {
        let req = self.request(c, nz);
        let art = self.compiler.compile(&req).map_err(|e| e.to_string())?;
        let opts = ExecOptions { verify: false };
        let outcome = if c.workers <= 1 {
            art.execute_pooled(self.pool, opts)
                .map_err(|e| e.to_string())?
        } else {
            // Worker counts are a world property, not a plan property:
            // pooled worlds are keyed without them, so multi-worker
            // probes run on a dedicated world instead.
            let base = WorldConfig::new(LatencyModel::zero()).with_compute_workers(c.workers);
            art.execute_with(&base, opts).map_err(|e| e.to_string())?
        };
        Ok(outcome.elapsed.as_secs_f64() * 1e6)
    }
}

impl MeasureBackend for ThreadBackend<'_> {
    fn measure_us(&self, c: &Candidate) -> Result<f64, String> {
        self.run(c, self.problem.nz)
    }

    fn checkpoint_us(&self, c: &Candidate, checkpoint_steps: usize) -> Option<Result<f64, String>> {
        let full_steps = c.steps(self.problem.nz);
        if checkpoint_steps == 0 || full_steps <= checkpoint_steps {
            return None; // a prefix would be the whole pipeline
        }
        let prefix_nz = (c.v * checkpoint_steps).min(self.problem.nz);
        let prefix_steps = prefix_nz.div_ceil(c.v.max(1)).max(1);
        Some(
            self.run(c, prefix_nz)
                .map(|us| us * full_steps as f64 / prefix_steps as f64),
        )
    }
}

/// Deterministic measurement under the cluster simulator.
pub struct SimBackend {
    /// The workload being tuned.
    pub problem: TuneProblem,
    /// Machine model (may carry a measured transfer curve).
    pub machine: MachineParams,
    /// Schedule the programs are built for.
    pub schedule: Schedule,
    /// Full- vs half-duplex NICs.
    pub duplex: bool,
    /// Shared-bus vs switched topology.
    pub shared_bus: bool,
    /// Seed of the per-rank speed factors.
    pub hetero_seed: u64,
    /// Spread of the per-rank speed factors (0 = homogeneous).
    pub hetero_spread: f64,
}

impl MeasureBackend for SimBackend {
    fn measure_us(&self, c: &Candidate) -> Result<f64, String> {
        // Tier and workers have no simulator counterpart: the model
        // charges t_c per point regardless. Only (V, shape) matter.
        let sides = [
            (self.problem.nx / c.pi) as i64,
            (self.problem.ny / c.pj) as i64,
            c.v as i64,
        ];
        let problem = ClusterProblem::new(
            Tiling::rectangular(&sides),
            DependenceSet::paper_3d(),
            self.problem.space(),
            2,
        )
        .map_err(|e| e.to_string())?;
        let programs = match self.schedule {
            Schedule::Blocking => problem.blocking_programs(&self.machine),
            Schedule::Overlap => problem.overlapping_programs(&self.machine),
        };
        let topology = if self.shared_bus {
            NetworkTopology::SharedBus
        } else {
            NetworkTopology::Switched
        };
        let cfg = SimConfig::new(self.machine)
            .with_duplex(self.duplex)
            .with_topology(topology);
        let speeds = problem.node_speeds(self.hetero_seed, self.hetero_spread);
        let result = simulate_heterogeneous(cfg, programs, speeds).map_err(|e| e.to_string())?;
        summarize(&result)
            .map(|s| s.makespan_us)
            .ok_or_else(|| "zero-rank fleet".into())
    }

    fn deterministic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiling_core::machine::KernelTier;

    fn sim() -> SimBackend {
        SimBackend {
            problem: TuneProblem {
                nx: 8,
                ny: 8,
                nz: 512,
                pi: 2,
                pj: 2,
            },
            machine: MachineParams::paper_cluster(),
            schedule: Schedule::Overlap,
            duplex: true,
            shared_bus: false,
            hetero_seed: 7,
            hetero_spread: 0.0,
        }
    }

    fn cand(v: usize) -> Candidate {
        Candidate {
            v,
            pi: 2,
            pj: 2,
            tier: KernelTier::Bitwise,
            workers: 1,
        }
    }

    #[test]
    fn sim_backend_is_deterministic_and_finite() {
        let b = sim();
        let a = b.measure_us(&cand(64)).unwrap();
        let again = b.measure_us(&cand(64)).unwrap();
        assert_eq!(a, again);
        assert!(a.is_finite() && a > 0.0);
        // No checkpoint probe: full simulation is already cheap.
        assert!(b.checkpoint_us(&cand(64), 4).is_none());
    }

    #[test]
    fn sim_backend_sees_the_height_tradeoff() {
        let b = sim();
        // Extreme heights are worse than a moderate one (the U-shape
        // the tuner descends). V=1 cannot contain the paper's unit
        // dependence along the mapping dimension — the backend refuses
        // it, which the tuner records as infeasible.
        assert!(b.measure_us(&cand(1)).is_err());
        let tiny = b.measure_us(&cand(2)).unwrap();
        let mid = b.measure_us(&cand(64)).unwrap();
        let huge = b.measure_us(&cand(512)).unwrap();
        assert!(mid < tiny, "{mid} !< {tiny}");
        assert!(mid < huge, "{mid} !< {huge}");
    }

    #[test]
    fn thread_backend_measures_and_checkpoints() {
        let compiler = Compiler::new(32);
        let pool = WorldPool::new(2);
        let b = ThreadBackend {
            problem: TuneProblem {
                nx: 4,
                ny: 4,
                nz: 256,
                pi: 2,
                pj: 2,
            },
            machine: MachineSpec::Paper,
            mode: ExecMode::Overlapping,
            transport: TransportKind::shared_slots(),
            compiler: &compiler,
            pool: &pool,
        };
        let c = cand(32);
        let full = b.measure_us(&c).unwrap();
        assert!(full > 0.0);
        // 256/32 = 8 steps; a 4-step checkpoint runs a 128-deep prefix
        // and doubles it.
        let est = b.checkpoint_us(&c, 4).unwrap().unwrap();
        assert!(est > 0.0);
        // Probes of an already-probed candidate hit the plan cache.
        let _ = b.measure_us(&c).unwrap();
        assert!(compiler.cache_stats().hits >= 1);
        // A checkpoint at/past the full depth has nothing to truncate.
        assert!(b.checkpoint_us(&c, 8).is_none());
        assert!(b.checkpoint_us(&c, 0).is_none());
    }
}
