//! The closed loop: seed → surrogate pre-rank → calibrate → commit.
//!
//! The seed is the closed form's own pick (`V*` clamped, the problem's
//! shape) — it is measured first and becomes the initial incumbent, so
//! the tuner can never return something worse than the analytic answer
//! *on the evaluated set*. Remaining candidates are scored by the
//! surrogate, the best `max_candidates` survive, and each survivor is
//! measured with best-of-N timing. On noisy backends a candidate is
//! first probed at a step-count checkpoint and abandoned when its
//! extrapolated cost is already `abandon_factor` over the incumbent.
//! The winner can be committed into planc's [`TunedCache`] keyed by
//! the workload identity.

use crate::backend::MeasureBackend;
use crate::candidates::{closed_form_for, enumerate, Candidate, Schedule, TuneProblem};
use crate::surrogate::Surrogate;
use planc::{tuned_key, PlanRequest, TunedCache, TunedEntry};
use std::sync::Arc;
use tiling_core::machine::{KernelTier, MachineParams};

/// Search-loop knobs.
#[derive(Clone, Debug)]
pub struct TuneConfig {
    /// Repetitions per measurement, keeping the minimum (1 on
    /// deterministic backends regardless).
    pub best_of: usize,
    /// Pipeline-step checkpoint for early abandon (0 disables).
    pub checkpoint_steps: usize,
    /// Abandon a candidate whose checkpoint-extrapolated cost exceeds
    /// `abandon_factor ×` the incumbent.
    pub abandon_factor: f64,
    /// Candidates surviving the surrogate cut (seed excluded — it is
    /// always measured).
    pub max_candidates: usize,
    /// Kernel tiers to explore.
    pub tiers: Vec<KernelTier>,
    /// Intra-rank worker counts to explore.
    pub workers: Vec<usize>,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            best_of: 3,
            checkpoint_steps: 4,
            abandon_factor: 1.15,
            max_candidates: 12,
            tiers: vec![KernelTier::Bitwise],
            workers: vec![1],
        }
    }
}

/// One measured candidate.
#[derive(Clone, Copy, Debug)]
pub struct Measured {
    /// The coordinates measured.
    pub candidate: Candidate,
    /// Measured makespan (µs), best of N.
    pub makespan_us: f64,
    /// `makespan_us / ⌈nz/V⌉`.
    pub us_per_step: f64,
    /// The continuous closed-form prediction at these coordinates (µs).
    pub predicted_us: f64,
    /// `(measured − predicted) / predicted`.
    pub pred_err_rel: f64,
}

/// What a tuning run found.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// The closed form's own pick, measured (always evaluated first).
    pub seed: Measured,
    /// The best measured candidate (≤ seed by construction).
    pub incumbent: Measured,
    /// Every candidate actually measured, in evaluation order
    /// (seed first).
    pub evaluated: Vec<Measured>,
    /// Candidates rejected at the checkpoint without a full run.
    pub abandoned: usize,
    /// Candidates the backend refused to run (e.g. a height too small
    /// to contain a dependence component).
    pub infeasible: usize,
    /// Size of the enumerated space before the surrogate cut.
    pub enumerated: usize,
}

impl TuneOutcome {
    /// Measured speedup of the incumbent over the closed-form seed
    /// (≥ 1 by construction).
    pub fn speedup(&self) -> f64 {
        self.seed.makespan_us / self.incumbent.makespan_us
    }
}

/// Run the loop. `machine` is the model candidates are *predicted*
/// under (the backend measures under whatever it wraps).
pub fn tune(
    problem: &TuneProblem,
    machine: &MachineParams,
    schedule: Schedule,
    backend: &dyn MeasureBackend,
    surrogate: &Surrogate,
    cfg: &TuneConfig,
) -> Result<TuneOutcome, String> {
    if !problem.nx.is_multiple_of(problem.pi) || !problem.ny.is_multiple_of(problem.pj) {
        return Err(format!(
            "grid {}x{} not divisible by processor grid {}x{}",
            problem.nx, problem.ny, problem.pi, problem.pj
        ));
    }
    let reps = if backend.deterministic() {
        1
    } else {
        cfg.best_of.max(1)
    };
    let measure = |c: &Candidate| -> Result<Measured, String> {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            best = best.min(backend.measure_us(c)?);
        }
        let cf = closed_form_for(problem, machine, schedule, c.pi, c.pj);
        let predicted_us = cf.predict_us(c.v as f64);
        Ok(Measured {
            candidate: *c,
            makespan_us: best,
            us_per_step: best / c.steps(problem.nz) as f64,
            predicted_us,
            pred_err_rel: (best - predicted_us) / predicted_us,
        })
    };

    // 1. Seed: the closed form's answer on the problem's own shape.
    let seed_cf = closed_form_for(problem, machine, schedule, problem.pi, problem.pj);
    let tier0 = cfg.tiers.first().copied().unwrap_or(KernelTier::Bitwise);
    let workers0 = cfg.workers.first().copied().unwrap_or(1);
    let seed_cand = Candidate {
        v: seed_cf.v_star_clamped(problem.nz),
        pi: problem.pi,
        pj: problem.pj,
        tier: tier0,
        workers: workers0,
    };
    let seed = measure(&seed_cand)?;
    let mut evaluated = vec![seed];
    let mut incumbent = seed;

    // 2. Enumerate and pre-rank the rest of the space.
    let mut pool: Vec<Candidate> = enumerate(problem, machine, schedule, &cfg.tiers, &cfg.workers)
        .into_iter()
        .filter(|c| *c != seed_cand)
        .collect();
    let enumerated = pool.len() + 1;
    let score = |c: &Candidate| {
        let cf = closed_form_for(problem, machine, schedule, c.pi, c.pj);
        surrogate.score(&cf, schedule, c.v)
    };
    pool.sort_by(|a, b| score(a).total_cmp(&score(b)));
    pool.truncate(cfg.max_candidates);

    // 3. Calibrate, abandoning hopeless candidates at the checkpoint.
    // A candidate the backend refuses (infeasible coordinates) is
    // skipped, not fatal — only a failing *seed* aborts the run.
    let mut abandoned = 0;
    let mut infeasible = 0;
    for c in &pool {
        if !backend.deterministic() && cfg.checkpoint_steps > 0 {
            match backend.checkpoint_us(c, cfg.checkpoint_steps) {
                Some(Ok(est)) if est > cfg.abandon_factor * incumbent.makespan_us => {
                    abandoned += 1;
                    continue;
                }
                Some(Err(_)) => {
                    infeasible += 1;
                    continue;
                }
                _ => {}
            }
        }
        let m = match measure(c) {
            Ok(m) => m,
            Err(_) => {
                infeasible += 1;
                continue;
            }
        };
        if m.makespan_us < incumbent.makespan_us {
            incumbent = m;
        }
        evaluated.push(m);
    }

    Ok(TuneOutcome {
        seed,
        incumbent,
        evaluated,
        abandoned,
        infeasible,
        enumerated,
    })
}

/// Record a winner in planc's tuned-plan cache under the workload
/// identity of `req` (see [`tuned_key`]) and hand the entry back.
pub fn commit(outcome: &TuneOutcome, req: &PlanRequest, cache: &TunedCache) -> Arc<TunedEntry> {
    let w = &outcome.incumbent;
    let entry = Arc::new(TunedEntry {
        v: w.candidate.v,
        pi: w.candidate.pi,
        pj: w.candidate.pj,
        tier: w.candidate.tier,
        workers: w.candidate.workers,
        measured_makespan_us: w.makespan_us,
        measured_us_per_step: w.us_per_step,
        predicted_us: w.predicted_us,
        pred_err_rel: w.pred_err_rel,
    });
    cache.insert(tuned_key(req), entry.clone());
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;

    fn sim_backend(problem: TuneProblem, spread: f64, seed: u64) -> SimBackend {
        SimBackend {
            problem,
            machine: MachineParams::paper_cluster(),
            schedule: Schedule::Overlap,
            duplex: true,
            shared_bus: false,
            hetero_seed: seed,
            hetero_spread: spread,
        }
    }

    #[test]
    fn incumbent_is_min_of_evaluated_and_never_worse_than_seed() {
        let problem = TuneProblem {
            nx: 8,
            ny: 8,
            nz: 700,
            pi: 2,
            pj: 2,
        };
        let backend = sim_backend(problem, 0.0, 1);
        let machine = MachineParams::paper_cluster();
        let out = tune(
            &problem,
            &machine,
            Schedule::Overlap,
            &backend,
            &Surrogate::ClosedForm,
            &TuneConfig::default(),
        )
        .unwrap();
        assert!(out.incumbent.makespan_us <= out.seed.makespan_us);
        assert!(out.speedup() >= 1.0);
        let min = out
            .evaluated
            .iter()
            .map(|m| m.makespan_us)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(out.incumbent.makespan_us, min);
        assert_eq!(out.evaluated[0].candidate, out.seed.candidate);
        assert!(out.enumerated > out.evaluated.len());
    }

    #[test]
    fn rejects_indivisible_problem() {
        let problem = TuneProblem {
            nx: 9,
            ny: 8,
            nz: 64,
            pi: 2,
            pj: 2,
        };
        let backend = sim_backend(problem, 0.0, 1);
        let machine = MachineParams::paper_cluster();
        assert!(tune(
            &problem,
            &machine,
            Schedule::Overlap,
            &backend,
            &Surrogate::ClosedForm,
            &TuneConfig::default(),
        )
        .is_err());
    }

    #[test]
    fn commit_records_the_incumbent_under_the_workload_key() {
        let problem = TuneProblem {
            nx: 8,
            ny: 8,
            nz: 700,
            pi: 2,
            pj: 2,
        };
        let backend = sim_backend(problem, 0.0, 1);
        let machine = MachineParams::paper_cluster();
        let out = tune(
            &problem,
            &machine,
            Schedule::Overlap,
            &backend,
            &Surrogate::ClosedForm,
            &TuneConfig::default(),
        )
        .unwrap();
        let cache = TunedCache::new(8);
        let req = PlanRequest::grid3(8, 8, 700, 2, 2);
        let entry = commit(&out, &req, &cache);
        assert_eq!(entry.v, out.incumbent.candidate.v);
        // Any spelling of the same workload finds the record.
        let got = cache.get(&tuned_key(&req.clone().with_v(13))).unwrap();
        assert_eq!(got, entry);
    }
}
