//! Cheap pre-ranking of candidates before any measurement is spent.
//!
//! Calibration runs are the expensive part of the loop, so candidates
//! are first scored by a surrogate and only the best-ranked survive to
//! measurement. Two surrogates exist:
//!
//! * [`Surrogate::ClosedForm`] — the analytic model itself, in its
//!   discrete (`⌈K/V⌉` staircase) form. Free, but exactly as wrong as
//!   the model the tuner is trying to beat.
//! * [`Surrogate::Trained`] — the closed form multiplied by a measured
//!   correction ratio learned from a sweep training slice
//!   (`results/tune_train.csv`, exported by `paper sweep`): the median
//!   `measured / predicted` over rows of the same schedule with a
//!   height within 2× of the candidate's.

use crate::candidates::Schedule;
use tiling_core::closed_form::ClosedForm;

/// One row of the sweep-exported training slice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainRow {
    /// Schedule the row was simulated under.
    pub schedule: Schedule,
    /// Tile height of the row.
    pub v: usize,
    /// Closed-form prediction (µs).
    pub predicted_us: f64,
    /// Simulated makespan (µs).
    pub makespan_us: f64,
    /// Whether the closed form was in-model for the row's config.
    pub in_model: bool,
}

/// A parsed training slice.
#[derive(Clone, Debug, Default)]
pub struct TrainSet {
    rows: Vec<TrainRow>,
}

impl TrainSet {
    /// Parse the `schedule,v,predicted_us,makespan_us,pred_in_model`
    /// CSV written by `paper sweep`. Rows that fail to parse are
    /// reported, not skipped — a malformed training file should be
    /// loud.
    pub fn parse_csv(text: &str) -> Result<TrainSet, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty training csv")?;
        if header.trim() != "schedule,v,predicted_us,makespan_us,pred_in_model" {
            return Err(format!("unexpected training header: {header}"));
        }
        let mut rows = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 5 {
                return Err(format!("row {}: expected 5 fields, got {}", i + 2, f.len()));
            }
            let schedule = match f[0] {
                "blocking" => Schedule::Blocking,
                "overlap" => Schedule::Overlap,
                s => return Err(format!("row {}: unknown schedule {s}", i + 2)),
            };
            let v = f[1]
                .parse()
                .map_err(|_| format!("row {}: bad v {}", i + 2, f[1]))?;
            let predicted_us: f64 = f[2]
                .parse()
                .map_err(|_| format!("row {}: bad predicted_us", i + 2))?;
            let makespan_us: f64 = f[3]
                .parse()
                .map_err(|_| format!("row {}: bad makespan_us", i + 2))?;
            let in_model = match f[4] {
                "true" => true,
                "false" => false,
                s => return Err(format!("row {}: bad pred_in_model {s}", i + 2)),
            };
            if predicted_us > 0.0 && makespan_us.is_finite() {
                rows.push(TrainRow {
                    schedule,
                    v,
                    predicted_us,
                    makespan_us,
                    in_model,
                });
            }
        }
        Ok(TrainSet { rows })
    }

    /// Number of usable rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the slice is empty (correction falls back to 1).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Median `measured / predicted` over rows of the same schedule
    /// with height in `[v/2, 2v]`; 1.0 when no row qualifies.
    pub fn correction(&self, schedule: Schedule, v: usize) -> f64 {
        let lo = (v / 2).max(1);
        let hi = v.saturating_mul(2);
        let mut ratios: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.schedule == schedule && (lo..=hi).contains(&r.v))
            .map(|r| r.makespan_us / r.predicted_us)
            .collect();
        if ratios.is_empty() {
            return 1.0;
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        ratios[ratios.len() / 2]
    }
}

/// The pre-ranking policy.
#[derive(Clone, Debug, Default)]
pub enum Surrogate {
    /// Rank by the discrete closed form alone.
    #[default]
    ClosedForm,
    /// Rank by the closed form times a trained correction ratio.
    Trained(TrainSet),
}

impl Surrogate {
    /// Score a candidate height under a shape's closed form; lower is
    /// better. Units are µs of the machine model.
    pub fn score(&self, cf: &ClosedForm, schedule: Schedule, v: usize) -> f64 {
        let base = cf.predict_us_discrete(v);
        match self {
            Surrogate::ClosedForm => base,
            Surrogate::Trained(t) => base * t.correction(schedule, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "schedule,v,predicted_us,makespan_us,pred_in_model\n\
                       overlap,100,1000,1100,true\n\
                       overlap,120,1000,1300,false\n\
                       overlap,800,1000,1200,true\n\
                       blocking,100,1000,2000,true\n";

    #[test]
    fn parses_and_corrects_by_schedule_and_range() {
        let t = TrainSet::parse_csv(CSV).unwrap();
        assert_eq!(t.len(), 4);
        // v=100 overlap window [50,200] → ratios {1.1, 1.3}, median 1.3
        // (upper-median of an even set).
        assert!((t.correction(Schedule::Overlap, 100) - 1.3).abs() < 1e-12);
        // Blocking sees only its own rows.
        assert!((t.correction(Schedule::Blocking, 100) - 2.0).abs() < 1e-12);
        // No rows in range → identity.
        assert_eq!(t.correction(Schedule::Overlap, 10_000), 1.0);
    }

    #[test]
    fn rejects_malformed_slices() {
        assert!(TrainSet::parse_csv("").is_err());
        assert!(TrainSet::parse_csv("wrong,header\n").is_err());
        assert!(TrainSet::parse_csv(
            "schedule,v,predicted_us,makespan_us,pred_in_model\noverlap,1,2\n"
        )
        .is_err());
        assert!(TrainSet::parse_csv(
            "schedule,v,predicted_us,makespan_us,pred_in_model\nwarp,1,2,3,true\n"
        )
        .is_err());
    }

    #[test]
    fn trained_surrogate_scales_the_closed_form() {
        let t = TrainSet::parse_csv(CSV).unwrap();
        let cf = ClosedForm {
            alpha: 10.0,
            beta: 0.1,
            gamma: 7.0,
            k_extent: 1000.0,
            v_star: 100.0,
        };
        let base = Surrogate::ClosedForm.score(&cf, Schedule::Overlap, 100);
        let trained = Surrogate::Trained(t).score(&cf, Schedule::Overlap, 100);
        assert!((trained / base - 1.3).abs() < 1e-9);
    }
}
