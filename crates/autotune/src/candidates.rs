//! Candidate enumeration: the search space the tuner measures.
//!
//! The space is seeded from the closed form (§6): for every legal
//! processor-grid factorization `pi × pj`, the heights are the
//! [`ClosedForm::v_ladder`] around that shape's own `V*` — a geometric
//! neighborhood plus the step-aligned heights that eliminate partial
//! last tiles. Tiers and worker counts multiply in from the tuner's
//! configuration. The seed candidate (the closed form's pick on the
//! problem's own shape) is always part of the space, so measured
//! search can only refine the analytic answer, never lose to it.

use tiling_core::closed_form::{nonoverlap_optimal_v, overlap_optimal_v, ClosedForm};
use tiling_core::dependence::DependenceSet;
use tiling_core::machine::{KernelTier, MachineParams};
use tiling_core::space::IterationSpace;

/// Blocking (§3) or overlapping (§4) schedule, named locally so the
/// simulator backend does not depend on the executor crates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Compute, then communicate (the paper's `ProcB`).
    Blocking,
    /// Communication hidden behind computation (`ProcNB`).
    Overlap,
}

impl Schedule {
    /// Canonical name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Blocking => "blocking",
            Schedule::Overlap => "overlap",
        }
    }
}

/// The workload being tuned: the paper's §5 3-D block layout, `pi × pj`
/// ranks over an `nx × ny × nz` space, pipelined along the third
/// dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuneProblem {
    /// Global extent along i.
    pub nx: usize,
    /// Global extent along j.
    pub ny: usize,
    /// Global extent along k (the mapping dimension).
    pub nz: usize,
    /// Ranks along i (the shape the closed form was asked about).
    pub pi: usize,
    /// Ranks along j.
    pub pj: usize,
}

impl TuneProblem {
    /// Total rank count — preserved by every candidate shape.
    pub fn ranks(&self) -> usize {
        self.pi * self.pj
    }

    /// The iteration space.
    pub fn space(&self) -> IterationSpace {
        IterationSpace::from_extents(&[self.nx as i64, self.ny as i64, self.nz as i64])
    }
}

/// One point of the search space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Tile height along the mapping dimension.
    pub v: usize,
    /// Processor-grid side along i.
    pub pi: usize,
    /// Processor-grid side along j.
    pub pj: usize,
    /// Compute kernel tier.
    pub tier: KernelTier,
    /// Intra-rank compute workers.
    pub workers: usize,
}

impl Candidate {
    /// Pipeline steps this candidate runs: `⌈nz / V⌉`.
    pub fn steps(&self, nz: usize) -> usize {
        nz.div_ceil(self.v.max(1)).max(1)
    }
}

/// The closed form for a given processor-grid shape of the problem.
pub fn closed_form_for(
    problem: &TuneProblem,
    machine: &MachineParams,
    schedule: Schedule,
    pi: usize,
    pj: usize,
) -> ClosedForm {
    let cross = [(problem.nx / pi) as i64, (problem.ny / pj) as i64];
    let space = problem.space();
    let deps = DependenceSet::paper_3d();
    match schedule {
        Schedule::Overlap => overlap_optimal_v(&space, &deps, machine, &cross, 2),
        Schedule::Blocking => nonoverlap_optimal_v(&space, &deps, machine, &cross, 2),
    }
}

/// Every factorization `pi × pj` of the problem's rank count whose
/// sides divide the grid (one tile column per processor, as in §5).
pub fn tile_shapes(problem: &TuneProblem) -> Vec<(usize, usize)> {
    let ranks = problem.ranks();
    (1..=ranks)
        .filter(|pi| ranks.is_multiple_of(*pi))
        .map(|pi| (pi, ranks / pi))
        .filter(|&(pi, pj)| problem.nx.is_multiple_of(pi) && problem.ny.is_multiple_of(pj))
        .collect()
}

/// Enumerate the full candidate space: shapes × each shape's V ladder
/// × tiers × worker counts. Deterministic order (shapes by ascending
/// `pi`, heights ascending).
pub fn enumerate(
    problem: &TuneProblem,
    machine: &MachineParams,
    schedule: Schedule,
    tiers: &[KernelTier],
    workers: &[usize],
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (pi, pj) in tile_shapes(problem) {
        let cf = closed_form_for(problem, machine, schedule, pi, pj);
        for v in cf.v_ladder(problem.nz) {
            for &tier in tiers {
                for &w in workers {
                    out.push(Candidate {
                        v,
                        pi,
                        pj,
                        tier,
                        workers: w,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> TuneProblem {
        TuneProblem {
            nx: 16,
            ny: 16,
            nz: 16384,
            pi: 4,
            pj: 4,
        }
    }

    #[test]
    fn shapes_preserve_rank_count_and_divisibility() {
        let p = problem();
        let shapes = tile_shapes(&p);
        assert!(shapes.contains(&(4, 4)));
        assert!(shapes.contains(&(2, 8)));
        assert!(shapes.contains(&(16, 1)));
        for (pi, pj) in shapes {
            assert_eq!(pi * pj, 16);
            assert_eq!(p.nx % pi, 0);
            assert_eq!(p.ny % pj, 0);
        }
        // An indivisible grid drops the offending factorizations.
        let odd = TuneProblem {
            nx: 12,
            ny: 16,
            nz: 64,
            pi: 4,
            pj: 2,
        };
        assert!(!tile_shapes(&odd).contains(&(8, 1)));
        assert!(tile_shapes(&odd).contains(&(4, 2)));
    }

    #[test]
    fn enumeration_contains_the_closed_form_seed() {
        let p = problem();
        let machine = MachineParams::paper_cluster();
        let cf = closed_form_for(&p, &machine, Schedule::Overlap, p.pi, p.pj);
        let seed_v = cf.v_star_clamped(p.nz);
        let cands = enumerate(
            &p,
            &machine,
            Schedule::Overlap,
            &[KernelTier::Bitwise],
            &[1],
        );
        assert!(cands
            .iter()
            .any(|c| c.v == seed_v && c.pi == p.pi && c.pj == p.pj));
        // Multiple shapes and multiple heights are explored.
        assert!(
            cands
                .iter()
                .map(|c| (c.pi, c.pj))
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1
        );
        assert!(cands.len() > 10);
    }

    #[test]
    fn candidate_steps_round_up() {
        let c = Candidate {
            v: 100,
            pi: 2,
            pj: 2,
            tier: KernelTier::Bitwise,
            workers: 1,
        };
        assert_eq!(c.steps(1000), 10);
        assert_eq!(c.steps(1001), 11);
        assert_eq!(c.steps(99), 1);
    }
}
