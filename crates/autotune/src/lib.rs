//! autotune — the closed loop between the analytic layer, the
//! simulator, and measured execution.
//!
//! The paper picks `V_optimal` analytically (eq. 7), but the closed
//! form is blind to regimes this workspace can produce: partial last
//! tiles (the `⌈K/V⌉` staircase), heterogeneous
//! [`NodeSpeeds`](tiling_core::machine::NodeSpeeds), NIC contention,
//! and measured piecewise transfer curves. This crate refines the
//! analytic answer by measured feedback:
//!
//! 1. **Seed** — [`candidates`] enumerates (V, tile shape, tier,
//!    workers) around each shape's own closed-form `V*`
//!    ([`ClosedForm::v_ladder`](tiling_core::closed_form::ClosedForm::v_ladder)),
//!    including the step-aligned heights that eliminate partial tiles.
//! 2. **Pre-rank** — [`surrogate`] scores candidates for free (closed
//!    form, optionally corrected by a sweep training slice) so only
//!    the promising ones are measured.
//! 3. **Calibrate** — [`backend`] measures survivors: real thread
//!    executions through planc's compiled plans and warm
//!    [`WorldPool`](planc::WorldPool) worlds, or the deterministic
//!    cluster simulator for out-of-model machines. Noisy backends get
//!    best-of-N timing and checkpoint-based early abandon.
//! 4. **Commit** — [`tuner`] keeps the best measured candidate (never
//!    worse than the seed on the evaluated set) and records it in
//!    planc's [`TunedCache`](planc::TunedCache).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod candidates;
pub mod surrogate;
pub mod tuner;

pub use backend::{MeasureBackend, SimBackend, ThreadBackend};
pub use candidates::{closed_form_for, enumerate, tile_shapes, Candidate, Schedule, TuneProblem};
pub use surrogate::{Surrogate, TrainRow, TrainSet};
pub use tuner::{commit, tune, Measured, TuneConfig, TuneOutcome};
