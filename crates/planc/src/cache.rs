//! The keyed compiled-plan cache.
//!
//! [`PlanKey`] is a *canonical* rendering of every compilation input —
//! workload, kernel, machine constants (bit-exact), tile height
//! choice, schedule mode, transport and tier. Key equality is defined
//! on the canonical string, never on the hash alone, so two distinct
//! requests can never collide into one cache slot; the FNV hash only
//! accelerates the map. [`PlanCache`] is a mutex-guarded LRU keyed by
//! [`PlanKey`] with hit/miss/eviction counters.

use crate::spec::{MachineSpec, PlanRequest, TuneMode, VChoice, WorkloadSpec};
use msgpass::transport::TransportKind;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use stencil::engine::ExecMode;
use tiling_core::machine::KernelTier;

/// Stable identity of a compiled plan: the canonical rendering of its
/// request. See the module docs.
#[derive(Clone, Debug)]
pub struct PlanKey {
    canon: String,
    hash: u64,
}

impl PlanKey {
    /// Derive the key of a request.
    pub fn of(req: &PlanRequest) -> Self {
        let mut c = String::new();
        match &req.workload {
            WorkloadSpec::Grid3D { nx, ny, nz, pi, pj } => {
                let _ = write!(c, "grid3:{nx}x{ny}x{nz}@{pi}x{pj}");
            }
            WorkloadSpec::Strip2D { nx, ny, ranks } => {
                let _ = write!(c, "strip2:{nx}x{ny}@{ranks}");
            }
            WorkloadSpec::Source { text, procs } => {
                // The full source participates in the identity: two
                // nests that differ anywhere are different plans.
                let _ = write!(c, "src:{procs:?}:{text}");
            }
        }
        let _ = write!(c, "|k={}", req.kernel.name());
        let _ = write!(c, "|m={}", req.machine.name());
        if let MachineSpec::Custom(p) = &req.machine {
            // Bit-exact float canonicalization: two customs are the
            // same machine iff every constant is the same bits.
            let _ = write!(
                c,
                "[{:x},{:x},{:x},{},{:x},{:x},{:x},{:x}]",
                p.t_c_us.to_bits(),
                p.t_s_us.to_bits(),
                p.t_t_us_per_byte.to_bits(),
                p.bytes_per_elem,
                p.fill_mpi_buffer.base_us.to_bits(),
                p.fill_mpi_buffer.per_byte_us.to_bits(),
                p.fill_kernel_buffer.base_us.to_bits(),
                p.fill_kernel_buffer.per_byte_us.to_bits(),
            );
            // A measured transfer curve changes Auto-V resolution, so
            // it must participate in the identity too (machines without
            // one render exactly as before the curve existed).
            if let Some(curve) = &p.transfer_curve {
                let _ = write!(c, "cv[");
                for (i, &(bytes, us)) in curve.knots().iter().enumerate() {
                    let sep = if i == 0 { "" } else { "," };
                    let _ = write!(c, "{sep}{:x}:{:x}", bytes.to_bits(), us.to_bits());
                }
                let _ = write!(c, "]");
            }
        }
        match req.v {
            VChoice::Explicit(v) => {
                let _ = write!(c, "|v={v}");
            }
            VChoice::Auto => {
                let _ = write!(c, "|v=auto");
            }
        }
        let _ = write!(
            c,
            "|s={}",
            match req.mode {
                ExecMode::Blocking => "blk",
                ExecMode::Overlapping => "ovl",
            }
        );
        match req.transport {
            TransportKind::Mpsc => {
                let _ = write!(c, "|t=mpsc");
            }
            TransportKind::SharedSlots { slots } => {
                let _ = write!(c, "|t=ss{slots}");
            }
        }
        let _ = write!(
            c,
            "|q={}",
            match req.tier {
                KernelTier::Bitwise => "bit",
                KernelTier::Fast => "fast",
            }
        );
        let _ = write!(c, "|b={:x}", req.boundary.to_bits());
        match req.tune {
            // `Off` renders nothing so pre-tuner canon strings (and any
            // digests derived from them) are preserved byte-for-byte.
            TuneMode::Off => {}
            TuneMode::Calibration => {
                let _ = write!(c, "|u=cal");
            }
            TuneMode::Committed => {
                let _ = write!(c, "|u=tuned");
            }
        }
        let hash = fnv1a(c.as_bytes());
        PlanKey { canon: c, hash }
    }

    /// The canonical rendering (the key's defining identity).
    pub fn canon(&self) -> &str {
        &self.canon
    }

    /// The 64-bit FNV-1a digest of the canonical rendering — a compact
    /// id for logs and wire protocols (equality still needs [`canon`]:
    /// the digest alone can collide).
    ///
    /// [`canon`]: PlanKey::canon
    pub fn digest(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for PlanKey {
    fn eq(&self, other: &Self) -> bool {
        // Equality is on the canonical string; the hash is a filter.
        self.hash == other.hash && self.canon == other.canon
    }
}

impl Eq for PlanKey {}

impl Hash for PlanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// FNV-1a, enough for an in-process map (equality still compares the
/// full canonical string).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Counters and occupancy of a [`PlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a compiled plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Plans evicted to stay under capacity.
    pub evictions: u64,
    /// Plans currently resident.
    pub len: usize,
    /// Capacity.
    pub cap: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, 0 when empty.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheInner<V> {
    map: HashMap<PlanKey, (V, u64)>,
    stamp: u64,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A mutex-guarded LRU cache keyed by [`PlanKey`]. The value type is
/// generic but in practice `Arc<PlanArtifact>` — hits hand out shared
/// references to the one immutable compiled plan.
pub struct PlanCache<V = Arc<crate::artifact::PlanArtifact>> {
    inner: Mutex<CacheInner<V>>,
}

impl<V: Clone> PlanCache<V> {
    /// A cache holding at most `cap` plans (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        PlanCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                stamp: 0,
                cap: cap.max(1),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Look up a compiled plan, counting the hit or miss and marking
    /// the entry most-recently-used.
    pub fn get(&self, key: &PlanKey) -> Option<V> {
        let mut g = self.inner.lock().unwrap();
        g.stamp += 1;
        let stamp = g.stamp;
        match g.map.get_mut(key) {
            Some((v, used)) => {
                *used = stamp;
                let v = v.clone();
                g.hits += 1;
                Some(v)
            }
            None => {
                g.misses += 1;
                None
            }
        }
    }

    /// [`PlanCache::get`] for a lookup retried under the single-flight
    /// lock: a hit counts (the call was satisfied from the cache), but
    /// a miss does not — the caller's first probe already counted it.
    pub fn get_recheck(&self, key: &PlanKey) -> Option<V> {
        let mut g = self.inner.lock().unwrap();
        g.stamp += 1;
        let stamp = g.stamp;
        match g.map.get_mut(key) {
            Some((v, used)) => {
                *used = stamp;
                let v = v.clone();
                g.hits += 1;
                Some(v)
            }
            None => None,
        }
    }

    /// Insert a compiled plan, evicting the least-recently-used entry
    /// if the cache is full.
    pub fn insert(&self, key: PlanKey, value: V) {
        let mut g = self.inner.lock().unwrap();
        g.stamp += 1;
        let stamp = g.stamp;
        if g.map.len() >= g.cap && !g.map.contains_key(&key) {
            if let Some(lru) = g
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                g.map.remove(&lru);
                g.evictions += 1;
            }
        }
        g.map.insert(key, (value, stamp));
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let g = self.inner.lock().unwrap();
        CacheStats {
            hits: g.hits,
            misses: g.misses,
            evictions: g.evictions,
            len: g.map.len(),
            cap: g.cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: usize) -> PlanKey {
        PlanKey::of(&PlanRequest::grid3(8, 8, 64 * (tag + 1), 2, 2))
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c: PlanCache<usize> = PlanCache::new(2);
        c.insert(key(0), 0);
        c.insert(key(1), 1);
        assert_eq!(c.get(&key(0)), Some(0)); // 0 now MRU
        c.insert(key(2), 2); // evicts 1
        assert_eq!(c.get(&key(1)), None);
        assert_eq!(c.get(&key(0)), Some(0));
        assert_eq!(c.get(&key(2)), Some(2));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn tune_mode_partitions_keys_and_off_is_invisible() {
        let base = PlanRequest::grid3(8, 8, 64, 2, 2);
        let off = PlanKey::of(&base);
        let cal = PlanKey::of(&base.clone().with_tune(TuneMode::Calibration));
        let tuned = PlanKey::of(&base.clone().with_tune(TuneMode::Committed));
        assert_ne!(off, cal);
        assert_ne!(off, tuned);
        assert_ne!(cal, tuned);
        // `Off` must not change the canonical rendering at all.
        assert!(!off.canon().contains("|u="));
        assert!(cal.canon().ends_with("|u=cal"));
        assert!(tuned.canon().ends_with("|u=tuned"));
    }

    #[test]
    fn custom_machine_transfer_curve_participates_in_key() {
        use crate::spec::MachineSpec;
        use tiling_core::machine::{MachineParams, PiecewiseCost};
        let plain = MachineParams::paper_cluster();
        let curve = PiecewiseCost::from_knots(&[(0.0, 50.0), (4096.0, 400.0)]).unwrap();
        let curved = plain.with_transfer_curve(curve);
        let base = PlanRequest::grid3(8, 8, 64, 2, 2);
        let k_plain = PlanKey::of(&base.clone().with_machine(MachineSpec::Custom(plain)));
        let k_curved = PlanKey::of(&base.clone().with_machine(MachineSpec::Custom(curved)));
        assert_ne!(k_plain, k_curved, "curve must change the identity");
        assert!(!k_plain.canon().contains("cv["));
        assert!(k_curved.canon().contains("cv["));
        // Different knots → different keys.
        let other = PiecewiseCost::from_knots(&[(0.0, 50.0), (4096.0, 500.0)]).unwrap();
        let k_other =
            PlanKey::of(&base.with_machine(MachineSpec::Custom(plain.with_transfer_curve(other))));
        assert_ne!(k_curved, k_other);
    }

    #[test]
    fn key_equality_is_on_canonical_string() {
        let a = PlanKey::of(&PlanRequest::grid3(8, 8, 64, 2, 2));
        let b = PlanKey::of(&PlanRequest::grid3(8, 8, 64, 2, 2));
        assert_eq!(a, b);
        let c = PlanKey::of(&PlanRequest::grid3(8, 8, 128, 2, 2));
        assert_ne!(a, c);
        // Same hash but different canon must not compare equal.
        let forged = PlanKey {
            canon: "not-the-same".into(),
            hash: a.hash,
        };
        assert_ne!(a, forged);
    }
}
