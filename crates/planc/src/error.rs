//! Typed per-stage compilation errors.
//!
//! Every variant names the pipeline stage that rejected the request,
//! so a service client sees *where* its request died — a parse error
//! with line/column spans, a dependence-extraction failure, an
//! infeasible decomposition, or a plan the static analyzer refused to
//! approve. All variants are `Clone`: a single-flight compilation
//! shares its outcome, success or failure, with every coalesced
//! waiter.

use std::fmt;
use stencil::decomp::DecompError;
use stencil::engine::EngineError;
use tiling_core::parse::ParseError;

/// Why plan compilation failed, by stage.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// The front stage could not parse the loop-nest source.
    Parse(ParseError),
    /// The front stage parsed the nest but could not extract a valid
    /// uniform flow-dependence set, or the set does not match any
    /// executor family.
    Dependence(String),
    /// The request itself is inconsistent (kernel/workload dimension
    /// mismatch, wrong processor arity, …).
    Spec(String),
    /// The optimize stage could not produce a usable tile height.
    Optimize(String),
    /// The decompose stage rejected the decomposition.
    Decompose(DecompError),
    /// The analyze stage (pre-flight static analysis) rejected the
    /// plan.
    Analyze(EngineError),
}

impl CompileError {
    /// The pipeline stage that produced this error.
    pub fn stage(&self) -> &'static str {
        match self {
            CompileError::Parse(_) | CompileError::Dependence(_) | CompileError::Spec(_) => "front",
            CompileError::Optimize(_) => "optimize",
            CompileError::Decompose(_) => "decompose",
            CompileError::Analyze(_) => "analyze",
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "front: parse error: {e}"),
            CompileError::Dependence(m) => write!(f, "front: dependence error: {m}"),
            CompileError::Spec(m) => write!(f, "front: bad request: {m}"),
            CompileError::Optimize(m) => write!(f, "optimize: {m}"),
            CompileError::Decompose(e) => write!(f, "decompose: {e}"),
            CompileError::Analyze(e) => write!(f, "analyze: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<DecompError> for CompileError {
    fn from(e: DecompError) -> Self {
        CompileError::Decompose(e)
    }
}
