//! Staged plan compilation: front → decompose → optimize → analyze.
//!
//! Each stage has a typed error (see [`CompileError`]) naming where a
//! request died:
//!
//! 1. **front** — resolve the workload into an executor family. Shipped
//!    shapes pass through; loop-nest source is parsed
//!    (`tiling-core::parse`), its uniform flow dependences extracted,
//!    and the nest matched against the family the executors implement
//!    (2-D strips for Example-1-class nests, the §5 block layout for
//!    3-D unit-dependence nests). Kernel/workload dimensions must
//!    agree.
//! 2. **decompose** — build the decomposition skeleton and validate
//!    divisibility and non-emptiness.
//! 3. **optimize** — resolve the tile height: explicit `V` passes
//!    through; `auto` evaluates the closed-form optimum
//!    `V* = √(K·α/(γ·β))` (§6) for the request's machine and schedule,
//!    clamped to the mapping extent.
//! 4. **analyze** — run the pre-flight static analysis exactly once
//!    (`stencil::plan::Compiled{2,3}D::compile`) and seal the
//!    [`PlanArtifact`].

use crate::artifact::{CompiledWorkload, PlanArtifact};
use crate::cache::PlanKey;
use crate::error::CompileError;
use crate::spec::{PlanRequest, VChoice, WorkloadSpec};
use std::collections::BTreeSet;
use stencil::dist2d::Decomp2D;
use stencil::dist3d::Decomp3D;
use stencil::engine::ExecMode;
use stencil::plan::{Compiled2D, Compiled3D};
use tiling_core::closed_form::{nonoverlap_optimal_v, overlap_optimal_v, ClosedForm};
use tiling_core::dependence::DependenceSet;
use tiling_core::parse::parse_loop_nest;
use tiling_core::space::IterationSpace;

/// The front stage's resolved shape: which executor family the request
/// compiles onto, with concrete extents and processor counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    D2 {
        nx: usize,
        ny: usize,
        ranks: usize,
    },
    D3 {
        nx: usize,
        ny: usize,
        nz: usize,
        pi: usize,
        pj: usize,
    },
}

impl Shape {
    fn dims(self) -> usize {
        match self {
            Shape::D2 { .. } => 2,
            Shape::D3 { .. } => 3,
        }
    }
}

/// Stage 1: resolve the workload into an executor family.
fn front(req: &PlanRequest) -> Result<Shape, CompileError> {
    let shape = match &req.workload {
        WorkloadSpec::Grid3D { nx, ny, nz, pi, pj } => Shape::D3 {
            nx: *nx,
            ny: *ny,
            nz: *nz,
            pi: *pi,
            pj: *pj,
        },
        WorkloadSpec::Strip2D { nx, ny, ranks } => Shape::D2 {
            nx: *nx,
            ny: *ny,
            ranks: *ranks,
        },
        WorkloadSpec::Source { text, procs } => {
            let nest = parse_loop_nest(text)?;
            let deps = nest
                .dependences()
                .map_err(|e| CompileError::Dependence(e.to_string()))?;
            let dims = nest.space().dims();
            let family = match dims {
                2 => DependenceSet::example_1(),
                3 => DependenceSet::paper_3d(),
                n => {
                    return Err(CompileError::Dependence(format!(
                        "loop nests of depth {n} have no executor family (only 2 and 3)"
                    )))
                }
            };
            // Every extracted dependence must be one the family's halo
            // exchange covers; extra vectors would make the executors
            // silently read stale values.
            let covered: BTreeSet<Vec<i64>> =
                family.iter().map(|d| d.components().to_vec()).collect();
            for d in deps.iter() {
                if !covered.contains(d.components()) {
                    return Err(CompileError::Dependence(format!(
                        "dependence {:?} is outside the {}-D executor family {:?}",
                        d.components(),
                        dims,
                        covered.iter().collect::<Vec<_>>()
                    )));
                }
            }
            if procs.len() != dims - 1 {
                return Err(CompileError::Spec(format!(
                    "a {dims}-D nest needs {} processor counts, got {:?}",
                    dims - 1,
                    procs
                )));
            }
            let ext = |d: usize| nest.space().extent(d) as usize;
            match dims {
                2 => Shape::D2 {
                    nx: ext(0),
                    ny: ext(1),
                    ranks: procs[0],
                },
                _ => Shape::D3 {
                    nx: ext(0),
                    ny: ext(1),
                    nz: ext(2),
                    pi: procs[0],
                    pj: procs[1],
                },
            }
        }
    };
    if req.kernel.dims() != shape.dims() {
        return Err(CompileError::Spec(format!(
            "kernel {} is {}-D but the workload is {}-D",
            req.kernel.name(),
            req.kernel.dims(),
            shape.dims()
        )));
    }
    Ok(shape)
}

/// Stage 2: validate the decomposition skeleton (everything except the
/// tile height, which the optimize stage resolves next).
fn decompose(shape: Shape, req: &PlanRequest) -> Result<(), CompileError> {
    match shape {
        Shape::D2 { nx, ny, ranks } => {
            let d = Decomp2D {
                nx,
                ny,
                ranks,
                v: 1,
                boundary: req.boundary,
            };
            d.validate()?;
        }
        Shape::D3 { nx, ny, nz, pi, pj } => {
            let d = Decomp3D {
                nx,
                ny,
                nz,
                pi,
                pj,
                v: 1,
                boundary: req.boundary,
            };
            d.validate()?;
        }
    }
    Ok(())
}

/// Stage 3: resolve the tile height and the closed-form prediction.
fn optimize(shape: Shape, req: &PlanRequest) -> Result<(usize, Option<f64>), CompileError> {
    let machine = req.machine.params();
    // The executor families fix the cross-section (one tile column per
    // processor) and the mapping dimension: strips map along i₁, the
    // §5 block layout along i₃.
    let (space, deps, cross, mapping_dim, k_extent) = match shape {
        Shape::D2 { nx, ny, ranks } => (
            IterationSpace::from_extents(&[nx as i64, ny as i64]),
            DependenceSet::example_1(),
            vec![(ny / ranks) as i64],
            0,
            nx,
        ),
        Shape::D3 { nx, ny, nz, pi, pj } => (
            IterationSpace::from_extents(&[nx as i64, ny as i64, nz as i64]),
            DependenceSet::paper_3d(),
            vec![(nx / pi) as i64, (ny / pj) as i64],
            2,
            nz,
        ),
    };
    let cf: ClosedForm = match req.mode {
        ExecMode::Overlapping => overlap_optimal_v(&space, &deps, &machine, &cross, mapping_dim),
        ExecMode::Blocking => nonoverlap_optimal_v(&space, &deps, &machine, &cross, mapping_dim),
    };
    let v = match req.v {
        VChoice::Explicit(v) => {
            if v == 0 {
                return Err(CompileError::Optimize("tile height must be ≥ 1".into()));
            }
            v
        }
        VChoice::Auto => {
            if !cf.v_star.is_finite() {
                return Err(CompileError::Optimize(format!(
                    "closed form degenerate for this machine (V* = {})",
                    cf.v_star
                )));
            }
            (cf.v_star_integer().max(1) as usize).min(k_extent.max(1))
        }
    };
    let predicted = {
        let p = cf.predict_us(v as f64);
        p.is_finite().then_some(p)
    };
    Ok((v, predicted))
}

/// Stage 4 + seal: run the pre-flight analysis exactly once and bundle
/// the artifact.
fn analyze(
    shape: Shape,
    v: usize,
    predicted_us: Option<f64>,
    req: &PlanRequest,
) -> Result<PlanArtifact, CompileError> {
    let (compiled, report) = match shape {
        Shape::D2 { nx, ny, ranks } => {
            let d = Decomp2D {
                nx,
                ny,
                ranks,
                v,
                boundary: req.boundary,
            };
            let c = Compiled2D::compile(d, req.mode).map_err(CompileError::Analyze)?;
            let report = *c.report().expect("compile always analyzes");
            (CompiledWorkload::Dim2(c), report)
        }
        Shape::D3 { nx, ny, nz, pi, pj } => {
            let d = Decomp3D {
                nx,
                ny,
                nz,
                pi,
                pj,
                v,
                boundary: req.boundary,
            };
            let c = Compiled3D::compile(d, req.mode).map_err(CompileError::Analyze)?;
            let report = *c.report().expect("compile always analyzes");
            (CompiledWorkload::Dim3(c), report)
        }
    };
    Ok(PlanArtifact {
        key: PlanKey::of(req),
        request: req.clone(),
        v,
        compiled,
        report,
        predicted_us,
    })
}

/// Compile a request through every stage. This is the *uncached* entry
/// point; services go through [`crate::compiler::Compiler`], which adds
/// the keyed cache and single-flight batching on top.
pub fn compile(req: &PlanRequest) -> Result<PlanArtifact, CompileError> {
    let shape = front(req)?;
    decompose(shape, req)?;
    let (v, predicted_us) = optimize(shape, req)?;
    analyze(shape, v, predicted_us, req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ExecOptions;
    use crate::spec::{KernelName, MachineSpec};
    use stencil::decomp::DecompError;

    #[test]
    fn grid3_compiles_and_executes_verified() {
        let a = compile(&PlanRequest::grid3(8, 8, 64, 2, 2).with_v(16)).expect("compiles");
        assert_eq!(a.v(), 16);
        assert_eq!(a.ranks(), 4);
        assert!(a.report().messages > 0);
        let out = a.execute(ExecOptions { verify: true }).expect("runs");
        assert_eq!(out.verified, Some(true));
    }

    #[test]
    fn strip2_compiles_and_executes_verified() {
        let a = compile(&PlanRequest::strip2(40, 12, 4).with_v(10)).expect("compiles");
        let out = a.execute(ExecOptions { verify: true }).expect("runs");
        assert_eq!(out.verified, Some(true));
    }

    #[test]
    fn auto_v_is_clamped_and_predicted() {
        let a = compile(&PlanRequest::grid3(8, 8, 4096, 2, 2)).expect("compiles");
        assert!(a.v() >= 1 && a.v() <= 4096, "v = {}", a.v());
        assert!(a.predicted_us().unwrap() > 0.0);
    }

    #[test]
    fn source_nest_compiles_to_3d_plan() {
        let src = "\
FOR i1 = 1 TO 8 DO
  FOR i2 = 1 TO 8 DO
    FOR i3 = 1 TO 64 DO
      A(i1, i2, i3) = sqrt(A(i1-1, i2, i3)) + sqrt(A(i1, i2-1, i3)) + sqrt(A(i1, i2, i3-1))
    ENDFOR
  ENDFOR
ENDFOR
";
        let a = compile(&PlanRequest::source(src, vec![2, 2]).with_v(16)).expect("compiles");
        assert_eq!(a.ranks(), 4);
        let out = a.execute(ExecOptions { verify: true }).expect("runs");
        assert_eq!(out.verified, Some(true));
    }

    #[test]
    fn source_nest_compiles_to_2d_plan() {
        let src = "\
FOR i1 = 1 TO 40 DO
  FOR i2 = 1 TO 12 DO
    A(i1, i2) = A(i1-1, i2-1) + A(i1-1, i2) + A(i1, i2-1)
  ENDFOR
ENDFOR
";
        let req = PlanRequest::source(src, vec![4])
            .with_kernel(KernelName::Example1)
            .with_machine(MachineSpec::Example1)
            .with_v(10);
        let a = compile(&req).expect("compiles");
        assert_eq!(a.ranks(), 4);
        let out = a.execute(ExecOptions { verify: true }).expect("runs");
        assert_eq!(out.verified, Some(true));
    }

    #[test]
    fn stage_errors_are_typed() {
        // front: parse error carries a position.
        let e = compile(&PlanRequest::source("FOR FOR", vec![2, 2])).unwrap_err();
        assert_eq!(e.stage(), "front");
        assert!(matches!(e, CompileError::Parse(_)));

        // front: kernel/workload dimension mismatch.
        let e = compile(&PlanRequest::grid3(8, 8, 64, 2, 2).with_kernel(KernelName::Example1))
            .unwrap_err();
        assert!(matches!(e, CompileError::Spec(_)));

        // front: dependence outside the family.
        let src = "\
FOR i1 = 1 TO 8 DO
  FOR i2 = 1 TO 8 DO
    A(i1, i2) = A(i1-2, i2)
  ENDFOR
ENDFOR
";
        let e = compile(&PlanRequest::source(src, vec![4]).with_kernel(KernelName::Example1))
            .unwrap_err();
        assert!(matches!(e, CompileError::Dependence(_)), "{e:?}");

        // decompose: divisibility.
        let e = compile(&PlanRequest::grid3(9, 8, 64, 2, 2)).unwrap_err();
        assert_eq!(e.stage(), "decompose");
        assert!(matches!(
            e,
            CompileError::Decompose(DecompError::NotDivisible { .. })
        ));

        // optimize: explicit zero height.
        let e = compile(&PlanRequest::grid3(8, 8, 64, 2, 2).with_v(0)).unwrap_err();
        assert_eq!(e.stage(), "optimize");
    }

    #[test]
    fn preflight_runs_at_compile_time_only() {
        // The artifact's world config always skips the per-run check;
        // the report proves the compile-time analysis happened.
        let a = compile(&PlanRequest::grid3(8, 8, 64, 2, 2).with_v(16)).expect("compiles");
        assert!(a.world_config().skip_preflight);
        assert_eq!(a.report().ranks, 4);
    }
}
