//! Plan requests: the typed, hashable *input* of plan compilation.
//!
//! A [`PlanRequest`] names everything a compiled plan depends on — the
//! workload (a shipped grid shape or a loop-nest source text), the
//! kernel, the machine model, the tile height choice, the schedule
//! mode, and the transport/tier the plan will execute on. Two requests
//! with the same [`PlanKey`](crate::cache::PlanKey) compile to
//! equivalent artifacts, which is what makes the compiled-plan cache
//! sound.

use msgpass::transport::TransportKind;
use stencil::engine::ExecMode;
use tiling_core::machine::{KernelTier, MachineParams};

/// What to compile: a shipped decomposition shape or loop-nest source.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// The paper's §5 3-D block layout: `pi × pj` ranks, each owning a
    /// `nx/pi × ny/pj × nz` block, pipelined along `i₃`.
    Grid3D {
        /// Global extent along i.
        nx: usize,
        /// Global extent along j.
        ny: usize,
        /// Global extent along k (the mapping dimension).
        nz: usize,
        /// Ranks along i.
        pi: usize,
        /// Ranks along j.
        pj: usize,
    },
    /// The §3 Example 1 2-D strip layout: `ranks` j-strips, pipelined
    /// along `i₁`.
    Strip2D {
        /// Global extent along i (the pipelined dimension).
        nx: usize,
        /// Global extent along j (partitioned across ranks).
        ny: usize,
        /// Number of ranks (j-strips).
        ranks: usize,
    },
    /// Loop-nest source text in the paper's FOR/ENDFOR grammar. The
    /// front stage parses it, extracts the flow dependences, and maps
    /// the nest onto the matching executor family (2-D strips or the
    /// 3-D block layout). `procs` is the processor arrangement over the
    /// non-mapping dimensions: `[ranks]` for a 2-D nest, `[pi, pj]` for
    /// a 3-D nest.
    Source {
        /// The loop-nest program text.
        text: String,
        /// Processor counts over the non-mapping dimensions.
        procs: Vec<usize>,
    },
}

impl WorkloadSpec {
    /// Short tag used in cache keys and logs.
    pub fn tag(&self) -> &'static str {
        match self {
            WorkloadSpec::Grid3D { .. } => "grid3",
            WorkloadSpec::Strip2D { .. } => "strip2",
            WorkloadSpec::Source { .. } => "src",
        }
    }
}

/// The compute kernel a plan executes. Only parameter-free kernels are
/// compilable (the request must be fully canonicalizable into a key).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelName {
    /// The paper's √-recurrence (3-D).
    Paper3D,
    /// Damped smoothing (3-D).
    Relax3D,
    /// FMA smoothing (3-D).
    Fused3D,
    /// Max-plus lattice paths (3-D).
    LongestPath3D,
    /// The §3 Example 1 sum (2-D).
    Example1,
    /// Axis-dependence Gauss–Seidel sweep (2-D).
    Smooth2D,
}

impl KernelName {
    /// The loop depth the kernel computes over.
    pub fn dims(self) -> usize {
        match self {
            KernelName::Paper3D
            | KernelName::Relax3D
            | KernelName::Fused3D
            | KernelName::LongestPath3D => 3,
            KernelName::Example1 | KernelName::Smooth2D => 2,
        }
    }

    /// Canonical name (cache keys, wire protocol, logs).
    pub fn name(self) -> &'static str {
        match self {
            KernelName::Paper3D => "paper3d",
            KernelName::Relax3D => "relax3d",
            KernelName::Fused3D => "fused3d",
            KernelName::LongestPath3D => "longestpath3d",
            KernelName::Example1 => "example1",
            KernelName::Smooth2D => "smooth2d",
        }
    }

    /// Parse a canonical name.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "paper3d" => KernelName::Paper3D,
            "relax3d" => KernelName::Relax3D,
            "fused3d" => KernelName::Fused3D,
            "longestpath3d" => KernelName::LongestPath3D,
            "example1" => KernelName::Example1,
            "smooth2d" => KernelName::Smooth2D,
            _ => return None,
        })
    }
}

/// The machine model compilation optimizes against — a named preset or
/// explicit parameters. The model is a first-class key component: the
/// same nest on a different machine is a different plan.
// LINT: `Custom` holds `MachineParams` inline (now large after growing an
// optional transfer curve) because the spec must stay `Copy` for bit-exact
// keying.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MachineSpec {
    /// `MachineParams::example_1()` (§3, 10 Mbps Ethernet).
    Example1,
    /// `MachineParams::paper_cluster()` (§5, FastEthernet).
    Paper,
    /// `MachineParams::gigabit_cluster()`.
    Gigabit,
    /// `MachineParams::os_bypass_cluster()`.
    OsBypass,
    /// Explicit parameters (canonicalized bit-exactly into the key).
    Custom(MachineParams),
}

impl MachineSpec {
    /// Resolve to concrete parameters.
    pub fn params(&self) -> MachineParams {
        match self {
            MachineSpec::Example1 => MachineParams::example_1(),
            MachineSpec::Paper => MachineParams::paper_cluster(),
            MachineSpec::Gigabit => MachineParams::gigabit_cluster(),
            MachineSpec::OsBypass => MachineParams::os_bypass_cluster(),
            MachineSpec::Custom(p) => *p,
        }
    }

    /// Canonical name (presets) for keys and the wire protocol.
    pub fn name(&self) -> &'static str {
        match self {
            MachineSpec::Example1 => "example1",
            MachineSpec::Paper => "paper",
            MachineSpec::Gigabit => "gigabit",
            MachineSpec::OsBypass => "os-bypass",
            MachineSpec::Custom(_) => "custom",
        }
    }

    /// Parse a preset name.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "example1" => MachineSpec::Example1,
            "paper" => MachineSpec::Paper,
            "gigabit" => MachineSpec::Gigabit,
            "os-bypass" => MachineSpec::OsBypass,
            _ => return None,
        })
    }
}

/// Tile height selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VChoice {
    /// Use this exact height.
    Explicit(usize),
    /// Derive `V*` from the closed-form optimum for the request's
    /// machine and schedule mode (§6), clamped to the mapping extent.
    Auto,
}

/// How the request relates to the autotuner. A calibration probe and a
/// committed winner must not share a [`PlanKey`](crate::cache::PlanKey)
/// with an ordinary request for the same shape: the tuner runs
/// truncated prefixes and alternate tiers under otherwise-identical
/// coordinates, and the tuned-plan cache records winners under a key
/// of its own.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TuneMode {
    /// Not a tuner request (the default; keys render exactly as before
    /// this variant existed).
    #[default]
    Off,
    /// A short calibration execution inside a tuning loop.
    Calibration,
    /// The committed winner of a tuning loop.
    Committed,
}

/// Everything a compiled plan depends on. See the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanRequest {
    /// The workload to compile.
    pub workload: WorkloadSpec,
    /// The kernel the plan will run.
    pub kernel: KernelName,
    /// The machine model to optimize against.
    pub machine: MachineSpec,
    /// Tile height selection.
    pub v: VChoice,
    /// Blocking (§3) or overlapping (§4) schedule.
    pub mode: ExecMode,
    /// Wire implementation the plan executes on.
    pub transport: TransportKind,
    /// Numerical tier of the compute kernels.
    pub tier: KernelTier,
    /// Boundary value of the grid.
    pub boundary: f32,
    /// Autotuner relationship (default [`TuneMode::Off`]).
    pub tune: TuneMode,
}

impl PlanRequest {
    /// A 3-D grid request with the shipped defaults: paper machine,
    /// auto `V`, overlapping schedule, shared-slot transport, bitwise
    /// tier, boundary 1.
    pub fn grid3(nx: usize, ny: usize, nz: usize, pi: usize, pj: usize) -> Self {
        PlanRequest {
            workload: WorkloadSpec::Grid3D { nx, ny, nz, pi, pj },
            kernel: KernelName::Paper3D,
            machine: MachineSpec::Paper,
            v: VChoice::Auto,
            mode: ExecMode::Overlapping,
            transport: TransportKind::shared_slots(),
            tier: KernelTier::Bitwise,
            boundary: 1.0,
            tune: TuneMode::Off,
        }
    }

    /// A 2-D strip request with the shipped defaults: Example 1 kernel
    /// and machine, auto `V`, overlapping schedule.
    pub fn strip2(nx: usize, ny: usize, ranks: usize) -> Self {
        PlanRequest {
            workload: WorkloadSpec::Strip2D { nx, ny, ranks },
            kernel: KernelName::Example1,
            machine: MachineSpec::Example1,
            v: VChoice::Auto,
            mode: ExecMode::Overlapping,
            transport: TransportKind::shared_slots(),
            tier: KernelTier::Bitwise,
            boundary: 1.0,
            tune: TuneMode::Off,
        }
    }

    /// A source-text request (defaults as [`PlanRequest::grid3`]; the
    /// kernel must be set to match the nest's depth).
    pub fn source(text: impl Into<String>, procs: Vec<usize>) -> Self {
        PlanRequest {
            workload: WorkloadSpec::Source {
                text: text.into(),
                procs,
            },
            ..PlanRequest::grid3(0, 0, 0, 0, 0)
        }
    }

    /// With an explicit tile height.
    pub fn with_v(mut self, v: usize) -> Self {
        self.v = VChoice::Explicit(v);
        self
    }

    /// With a schedule mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// With a kernel.
    pub fn with_kernel(mut self, kernel: KernelName) -> Self {
        self.kernel = kernel;
        self
    }

    /// With a machine model.
    pub fn with_machine(mut self, machine: MachineSpec) -> Self {
        self.machine = machine;
        self
    }

    /// With a transport.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// With a kernel tier.
    pub fn with_tier(mut self, tier: KernelTier) -> Self {
        self.tier = tier;
        self
    }

    /// With a boundary value.
    pub fn with_boundary(mut self, boundary: f32) -> Self {
        self.boundary = boundary;
        self
    }

    /// With a tune mode.
    pub fn with_tune(mut self, tune: TuneMode) -> Self {
        self.tune = tune;
        self
    }

    /// Parse a request from the service wire format: space-separated
    /// `key=value` pairs. Values may be double-quoted; inside quotes,
    /// `\n`, `\"` and `\\` escapes are decoded (how a one-line protocol
    /// carries multi-line loop-nest source).
    ///
    /// Keys: `workload` (`grid3`|`strip2`|`src`), `nx` `ny` `nz` `pi`
    /// `pj` `ranks` `procs` (comma-separated), `src` (source text),
    /// `kernel`, `machine`, `v` (int or `auto`), `mode`
    /// (`blocking`|`overlap`), `transport` (`mpsc`|`shared-slots`),
    /// `tier` (`bitwise`|`fast`), `boundary`, `tune`
    /// (`off`|`calibration`|`committed`).
    pub fn parse_kv(line: &str) -> Result<Self, String> {
        let kvs = split_kv(line)?;
        let get = |k: &str| {
            kvs.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        let int = |k: &str| -> Result<Option<usize>, String> {
            get(k)
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| format!("bad integer for {k}: {v}"))
                })
                .transpose()
        };
        let need_int = |k: &str| int(k)?.ok_or_else(|| format!("missing {k}"));

        let workload = match get("workload").ok_or("missing workload")? {
            "grid3" => WorkloadSpec::Grid3D {
                nx: need_int("nx")?,
                ny: need_int("ny")?,
                nz: need_int("nz")?,
                pi: need_int("pi")?,
                pj: need_int("pj")?,
            },
            "strip2" => WorkloadSpec::Strip2D {
                nx: need_int("nx")?,
                ny: need_int("ny")?,
                ranks: need_int("ranks")?,
            },
            "src" => {
                let text = get("src").ok_or("missing src")?.to_string();
                let procs = get("procs")
                    .ok_or("missing procs")?
                    .split(',')
                    .map(|p| {
                        p.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("bad procs entry: {p}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                WorkloadSpec::Source { text, procs }
            }
            other => return Err(format!("unknown workload: {other}")),
        };
        let kernel = match get("kernel") {
            Some(k) => KernelName::from_name(k).ok_or_else(|| format!("unknown kernel: {k}"))?,
            None => match &workload {
                WorkloadSpec::Strip2D { .. } => KernelName::Example1,
                _ => KernelName::Paper3D,
            },
        };
        let machine = match get("machine") {
            Some(m) => MachineSpec::from_name(m).ok_or_else(|| format!("unknown machine: {m}"))?,
            None => MachineSpec::Paper,
        };
        let v = match get("v") {
            None | Some("auto") => VChoice::Auto,
            Some(s) => VChoice::Explicit(s.parse().map_err(|_| format!("bad v: {s}"))?),
        };
        let mode = match get("mode") {
            None | Some("overlap") => ExecMode::Overlapping,
            Some("blocking") => ExecMode::Blocking,
            Some(m) => return Err(format!("unknown mode: {m}")),
        };
        let transport = match get("transport") {
            None | Some("shared-slots") => TransportKind::shared_slots(),
            Some("mpsc") => TransportKind::Mpsc,
            Some(t) => return Err(format!("unknown transport: {t}")),
        };
        let tier = match get("tier") {
            None | Some("bitwise") => KernelTier::Bitwise,
            Some("fast") => KernelTier::Fast,
            Some(t) => return Err(format!("unknown tier: {t}")),
        };
        let boundary = match get("boundary") {
            None => 1.0,
            Some(b) => b.parse().map_err(|_| format!("bad boundary: {b}"))?,
        };
        let tune = match get("tune") {
            None | Some("off") => TuneMode::Off,
            Some("calibration") => TuneMode::Calibration,
            Some("committed") => TuneMode::Committed,
            Some(t) => return Err(format!("unknown tune mode: {t}")),
        };
        Ok(PlanRequest {
            workload,
            kernel,
            machine,
            v,
            mode,
            transport,
            tier,
            boundary,
            tune,
        })
    }
}

/// Split a wire line into `(key, value)` pairs, honoring quotes.
fn split_kv(line: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut chars = line.trim().chars().peekable();
    while chars.peek().is_some() {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty key".into());
        }
        let mut val = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some('n') => val.push('\n'),
                        Some('"') => val.push('"'),
                        Some('\\') => val.push('\\'),
                        other => return Err(format!("bad escape: \\{other:?}")),
                    },
                    Some(c) => val.push(c),
                    None => return Err(format!("unterminated quote in value of {key}")),
                }
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                val.push(c);
                chars.next();
            }
        }
        out.push((key, val));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grid3_line() {
        let r = PlanRequest::parse_kv(
            "workload=grid3 nx=8 ny=8 nz=256 pi=2 pj=2 v=64 mode=blocking transport=mpsc tier=fast boundary=2.5",
        )
        .unwrap();
        assert_eq!(
            r.workload,
            WorkloadSpec::Grid3D {
                nx: 8,
                ny: 8,
                nz: 256,
                pi: 2,
                pj: 2
            }
        );
        assert_eq!(r.v, VChoice::Explicit(64));
        assert_eq!(r.mode, ExecMode::Blocking);
        assert_eq!(r.transport, TransportKind::Mpsc);
        assert_eq!(r.tier, KernelTier::Fast);
        assert_eq!(r.boundary, 2.5);
    }

    #[test]
    fn parse_source_line_with_escapes() {
        let r = PlanRequest::parse_kv(
            r#"workload=src procs=2,2 src="FOR i = 1 TO 4 DO\nENDFOR" kernel=paper3d"#,
        )
        .unwrap();
        match &r.workload {
            WorkloadSpec::Source { text, procs } => {
                assert!(text.contains('\n'));
                assert_eq!(procs, &[2, 2]);
            }
            w => panic!("wrong workload: {w:?}"),
        }
    }

    #[test]
    fn parse_defaults() {
        let r = PlanRequest::parse_kv("workload=strip2 nx=40 ny=12 ranks=4").unwrap();
        assert_eq!(r.kernel, KernelName::Example1);
        assert_eq!(r.v, VChoice::Auto);
        assert_eq!(r.mode, ExecMode::Overlapping);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(PlanRequest::parse_kv("workload=grid3 nx=8").is_err());
        assert!(PlanRequest::parse_kv("workload=warp9").is_err());
        assert!(PlanRequest::parse_kv("workload=grid3 nx=x ny=8 nz=8 pi=1 pj=1").is_err());
    }
}
