//! Tuned-plan records: what the autotuner commits back into planc.
//!
//! A tuning run measures many calibration plans and keeps one winner.
//! The winner is recorded as a [`TunedEntry`] — the chosen coordinates
//! plus the measured cost that justified them — in a [`TunedCache`]
//! keyed by [`tuned_key`], the *workload identity* of the request (its
//! height reset to `Auto`, its tune mode forced to `Committed`). Any
//! later request for the same workload/machine/schedule can then look
//! up the tuned coordinates without re-running calibration, and the
//! entry carries enough provenance (`predicted_us`, `pred_err_rel`) to
//! audit how far the closed form was off.

use crate::cache::{PlanCache, PlanKey};
use crate::spec::{PlanRequest, TuneMode, VChoice};
use std::sync::Arc;
use tiling_core::machine::KernelTier;

/// The winning configuration of one tuning run plus the measured cost
/// that earned it.
#[derive(Clone, Debug, PartialEq)]
pub struct TunedEntry {
    /// Winning tile height.
    pub v: usize,
    /// Winning processor-grid side along i.
    pub pi: usize,
    /// Winning processor-grid side along j.
    pub pj: usize,
    /// Winning kernel tier.
    pub tier: KernelTier,
    /// Winning intra-rank compute worker count.
    pub workers: usize,
    /// Measured makespan of the winner (µs).
    pub measured_makespan_us: f64,
    /// Measured cost per pipeline step (µs) — makespan / ⌈K/V⌉.
    pub measured_us_per_step: f64,
    /// The closed form's prediction for the winner's coordinates (µs).
    pub predicted_us: f64,
    /// `(measured − predicted) / predicted` for the winner.
    pub pred_err_rel: f64,
}

/// Cache of tuned winners. Reuses [`PlanCache`]'s keyed LRU (and its
/// hit/miss/eviction accounting) with [`TunedEntry`] values.
pub type TunedCache = PlanCache<Arc<TunedEntry>>;

/// The key a tuned winner is recorded under: the request with the
/// height put back to [`VChoice::Auto`] and the tune mode forced to
/// [`TuneMode::Committed`], so calibration probes with explicit `V`s
/// all resolve to one identity — the workload they were tuning.
pub fn tuned_key(req: &PlanRequest) -> PlanKey {
    let mut canonical = req.clone();
    canonical.v = VChoice::Auto;
    canonical.tune = TuneMode::Committed;
    PlanKey::of(&canonical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TuneMode;

    #[test]
    fn calibration_probes_share_one_tuned_key() {
        let base = PlanRequest::grid3(8, 8, 256, 2, 2);
        let a = tuned_key(&base.clone().with_v(32).with_tune(TuneMode::Calibration));
        let b = tuned_key(&base.clone().with_v(64).with_tune(TuneMode::Calibration));
        let c = tuned_key(&base);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(a.canon().ends_with("|u=tuned"));
        // But a different workload is a different identity.
        let d = tuned_key(&PlanRequest::grid3(8, 8, 512, 2, 2));
        assert_ne!(a, d);
    }

    #[test]
    fn tuned_cache_round_trips_entries() {
        let cache: TunedCache = TunedCache::new(4);
        let req = PlanRequest::grid3(8, 8, 256, 2, 2);
        let entry = Arc::new(TunedEntry {
            v: 48,
            pi: 2,
            pj: 2,
            tier: KernelTier::Bitwise,
            workers: 1,
            measured_makespan_us: 1234.5,
            measured_us_per_step: 205.75,
            predicted_us: 1100.0,
            pred_err_rel: (1234.5 - 1100.0) / 1100.0,
        });
        cache.insert(tuned_key(&req), entry.clone());
        let got = cache.get(&tuned_key(&req.clone().with_v(48))).unwrap();
        assert_eq!(got, entry);
        assert_eq!(cache.stats().hits, 1);
    }
}
