//! The long-running plan-compilation service.
//!
//! [`PlanService`] owns a bounded job queue drained by a pool of
//! worker threads. Jobs are [`JobRequest::Compile`] (produce an
//! `Arc<PlanArtifact>`) or [`JobRequest::Execute`] (compile-or-fetch,
//! then run the plan). All compilation goes through the shared
//! [`Compiler`] — identical concurrent requests coalesce onto one
//! flight and the LRU cache serves repeats — and execute jobs draw
//! warm worlds from a shared [`WorldPool`]. `try_submit` rejects with
//! [`ServiceError::QueueFull`] instead of blocking: the queue bound is
//! the service's backpressure.
//!
//! [`smoke`] drives a service instance through a deterministic
//! concurrent mixed compile/execute load and reports sustained
//! jobs/sec plus cache behavior — the load CI gates on.

use crate::artifact::{ExecOptions, ExecOutcome, PlanArtifact};
use crate::cache::CacheStats;
use crate::compiler::{Compiler, CompilerStats};
use crate::error::CompileError;
use crate::spec::PlanRequest;
use crate::worlds::{WorldPool, WorldPoolStats};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;
use stencil::engine::{EngineError, ExecMode};

/// Service sizing.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Queue bound; `try_submit` rejects beyond it.
    pub queue_cap: usize,
    /// Compiled-plan cache capacity.
    pub cache_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_cap: 64,
            cache_cap: 32,
        }
    }
}

/// What a client asks the service to do.
#[derive(Clone, Debug)]
pub enum JobRequest {
    /// Compile (or fetch) the plan.
    Compile(PlanRequest),
    /// Compile (or fetch) the plan, then execute it.
    Execute(PlanRequest, ExecOptions),
}

/// What a finished job produced.
#[derive(Clone, Debug)]
pub enum JobResponse {
    /// The compiled artifact.
    Compiled(Arc<PlanArtifact>),
    /// The compiled artifact and one execution's outcome.
    Executed(Arc<PlanArtifact>, ExecOutcome),
}

impl JobResponse {
    /// The artifact either job kind produced.
    pub fn artifact(&self) -> &Arc<PlanArtifact> {
        match self {
            JobResponse::Compiled(a) => a,
            JobResponse::Executed(a, _) => a,
        }
    }
}

/// Why a job (or submission) failed.
#[derive(Clone, Debug)]
pub enum ServiceError {
    /// The bounded queue is full — retry later.
    QueueFull,
    /// The plan did not compile.
    Compile(CompileError),
    /// The plan compiled but execution failed.
    Exec(EngineError),
    /// The service shut down before the job ran.
    Shutdown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull => write!(f, "job queue full"),
            ServiceError::Compile(e) => write!(f, "compile failed: {e}"),
            ServiceError::Exec(e) => write!(f, "execution failed: {e}"),
            ServiceError::Shutdown => write!(f, "service shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A handle to a submitted job; [`JobTicket::wait`] blocks for the
/// outcome.
pub struct JobTicket {
    rx: mpsc::Receiver<Result<JobResponse, ServiceError>>,
}

impl JobTicket {
    /// Block until the job finishes.
    pub fn wait(self) -> Result<JobResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Shutdown))
    }
}

struct Job {
    request: JobRequest,
    reply: mpsc::Sender<Result<JobResponse, ServiceError>>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    queue_cap: usize,
    compiler: Compiler,
    worlds: WorldPool,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
}

/// A point-in-time snapshot of every service counter.
#[derive(Clone, Copy, Debug)]
pub struct ServiceMetrics {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs fully processed (success or failure).
    pub completed: u64,
    /// Submissions rejected by the queue bound.
    pub rejected: u64,
    /// Compiled-plan cache counters.
    pub cache: CacheStats,
    /// Pipeline/coalescing counters.
    pub compiler: CompilerStats,
    /// World-pool counters.
    pub worlds: WorldPoolStats,
}

/// See the module docs.
pub struct PlanService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PlanService {
    /// Start the service: spawns `cfg.workers` worker threads.
    pub fn start(cfg: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_cap: cfg.queue_cap.max(1),
            compiler: Compiler::new(cfg.cache_cap),
            worlds: WorldPool::default(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|w| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("planc-worker-{w}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn service worker")
            })
            .collect();
        PlanService { shared, workers }
    }

    /// Submit a job; rejects with [`ServiceError::QueueFull`] when the
    /// bounded queue is at capacity.
    pub fn try_submit(&self, request: JobRequest) -> Result<JobTicket, ServiceError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServiceError::Shutdown);
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().unwrap();
            if q.len() >= self.shared.queue_cap {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::QueueFull);
            }
            q.push_back(Job { request, reply: tx });
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.cv.notify_one();
        Ok(JobTicket { rx })
    }

    /// Compile synchronously on the caller's thread, still through the
    /// shared cache and single-flight (the library-API fast path; no
    /// queue hop).
    pub fn compile(&self, req: &PlanRequest) -> Result<Arc<PlanArtifact>, CompileError> {
        self.shared.compiler.compile(req)
    }

    /// Snapshot all counters.
    pub fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            cache: self.shared.compiler.cache_stats(),
            compiler: self.shared.compiler.stats(),
            worlds: self.shared.worlds.stats(),
        }
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Any jobs still queued never ran: tell their clients.
        let mut q = self.shared.queue.lock().unwrap();
        for job in q.drain(..) {
            let _ = job.reply.send(Err(ServiceError::Shutdown));
        }
    }
}

fn worker_loop(sh: &Shared) {
    loop {
        let job = {
            let mut q = sh.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if sh.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = sh.cv.wait(q).unwrap();
            }
        };
        let outcome = run_job(sh, &job.request);
        sh.completed.fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send(outcome);
    }
}

fn run_job(sh: &Shared, request: &JobRequest) -> Result<JobResponse, ServiceError> {
    match request {
        JobRequest::Compile(req) => {
            let a = sh.compiler.compile(req).map_err(ServiceError::Compile)?;
            Ok(JobResponse::Compiled(a))
        }
        JobRequest::Execute(req, opts) => {
            let a = sh.compiler.compile(req).map_err(ServiceError::Compile)?;
            let out = a
                .execute_pooled(&sh.worlds, *opts)
                .map_err(ServiceError::Exec)?;
            Ok(JobResponse::Executed(a, out))
        }
    }
}

/// What [`smoke`] measured.
#[derive(Clone, Copy, Debug)]
pub struct SmokeReport {
    /// Jobs completed.
    pub jobs: u64,
    /// Wall-clock seconds for the whole load.
    pub secs: f64,
    /// Sustained throughput.
    pub jobs_per_sec: f64,
    /// Cache hit ratio over the run.
    pub hit_ratio: f64,
    /// Calls coalesced onto in-flight compilations.
    pub coalesced: u64,
    /// Pipeline compilations actually run.
    pub compiles: u64,
    /// Warm-world reuses.
    pub worlds_reused: u64,
    /// Executions whose result verified against the sequential
    /// reference.
    pub verified: u64,
}

/// Drive a fresh service instance through a deterministic concurrent
/// mixed compile/execute load: `clients` client threads each submit
/// `jobs_per_client` jobs drawn (by a fixed LCG) from a small set of
/// plan shapes, so repeats hit the cache and concurrent first
/// requests exercise single-flight. Execute jobs verify against the
/// sequential reference.
pub fn smoke(cfg: ServiceConfig, clients: usize, jobs_per_client: usize) -> SmokeReport {
    let service = PlanService::start(cfg);
    // Small shapes: the load measures service machinery, not kernels.
    let shapes: Vec<PlanRequest> = vec![
        PlanRequest::grid3(8, 8, 256, 2, 2).with_v(64),
        PlanRequest::grid3(8, 8, 256, 2, 2)
            .with_v(64)
            .with_mode(ExecMode::Blocking),
        PlanRequest::grid3(4, 4, 512, 2, 2).with_v(128),
        PlanRequest::strip2(64, 16, 4).with_v(16),
        PlanRequest::grid3(8, 8, 256, 2, 2), // auto-V variant
        PlanRequest::strip2(64, 16, 4)
            .with_v(16)
            .with_mode(ExecMode::Blocking),
    ];
    let start = Instant::now();
    let verified = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..clients.max(1) {
            let service = &service;
            let shapes = &shapes;
            let verified = &verified;
            scope.spawn(move || {
                // Deterministic per-client LCG job mix.
                let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (c as u64);
                let mut tickets = Vec::new();
                for _ in 0..jobs_per_client {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let shape = shapes[(state >> 33) as usize % shapes.len()].clone();
                    let job = if state.is_multiple_of(3) {
                        JobRequest::Execute(shape, ExecOptions { verify: true })
                    } else {
                        JobRequest::Compile(shape)
                    };
                    // The bounded queue may reject under burst; retry
                    // after draining one of our own tickets.
                    loop {
                        match service.try_submit(job.clone()) {
                            Ok(t) => {
                                tickets.push(t);
                                break;
                            }
                            Err(ServiceError::QueueFull) => match tickets.pop() {
                                Some(t) => settle(t, verified),
                                None => std::thread::yield_now(),
                            },
                            Err(e) => panic!("smoke submission failed: {e}"),
                        }
                    }
                }
                for t in tickets {
                    settle(t, verified);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let m = service.metrics();
    SmokeReport {
        jobs: m.completed,
        secs,
        jobs_per_sec: m.completed as f64 / secs,
        hit_ratio: m.cache.hit_ratio(),
        coalesced: m.compiler.coalesced,
        compiles: m.compiler.compiles,
        worlds_reused: m.worlds.reused,
        verified: verified.load(Ordering::Relaxed),
    }
}

fn settle(t: JobTicket, verified: &AtomicU64) {
    match t.wait() {
        Ok(JobResponse::Executed(_, out)) => {
            assert_eq!(
                out.verified,
                Some(true),
                "smoke execution failed verification"
            );
            verified.fetch_add(1, Ordering::Relaxed);
        }
        Ok(JobResponse::Compiled(_)) => {}
        Err(e) => panic!("smoke job failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_and_execute_jobs_round_trip() {
        let svc = PlanService::start(ServiceConfig::default());
        let req = PlanRequest::grid3(8, 8, 64, 2, 2).with_v(16);
        let t1 = svc.try_submit(JobRequest::Compile(req.clone())).unwrap();
        let a = match t1.wait().unwrap() {
            JobResponse::Compiled(a) => a,
            r => panic!("wrong response: {r:?}"),
        };
        assert_eq!(a.ranks(), 4);
        let t2 = svc
            .try_submit(JobRequest::Execute(req, ExecOptions { verify: true }))
            .unwrap();
        match t2.wait().unwrap() {
            JobResponse::Executed(b, out) => {
                assert!(Arc::ptr_eq(&a, &b), "execute must reuse the cached plan");
                assert_eq!(out.verified, Some(true));
            }
            r => panic!("wrong response: {r:?}"),
        }
        let m = svc.metrics();
        assert_eq!(m.completed, 2);
        assert_eq!(m.cache.hits, 1);
    }

    #[test]
    fn queue_bound_rejects() {
        // One worker, capacity 1: a burst must see QueueFull.
        let svc = PlanService::start(ServiceConfig {
            workers: 1,
            queue_cap: 1,
            cache_cap: 4,
        });
        let req = PlanRequest::grid3(8, 8, 2048, 2, 2).with_v(8);
        let mut accepted = Vec::new();
        let mut rejected = 0;
        for _ in 0..50 {
            match svc.try_submit(JobRequest::Compile(req.clone())) {
                Ok(t) => accepted.push(t),
                Err(ServiceError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(rejected > 0, "bounded queue never pushed back");
        for t in accepted {
            t.wait().unwrap();
        }
        assert_eq!(svc.metrics().rejected, rejected);
    }

    #[test]
    fn smoke_load_hits_cache_and_verifies() {
        let r = smoke(ServiceConfig::default(), 4, 8);
        assert_eq!(r.jobs, 32);
        assert!(r.hit_ratio > 0.0, "no cache hits under repeated load");
        assert!(r.verified > 0, "no execute jobs verified");
        assert!(
            r.compiles <= 6,
            "more compiles than distinct shapes: {}",
            r.compiles
        );
    }
}
