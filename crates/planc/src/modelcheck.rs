//! Model checking of planc's concurrency protocols.
//!
//! Three of this crate's subsystems arbitrate between threads:
//! [`crate::compiler`]'s single-flight coalescing (inflight map +
//! per-key flight condvar), [`crate::worlds`]'s keyed warm-world pool,
//! and the tuned-plan cache ([`crate::tuned`] over
//! [`crate::cache::PlanCache`]'s mutex LRU). This module restates each
//! protocol as a [`miniloom::Model`] over *shadow state* — the lock-
//! held decision logic, not the real `Mutex`/`Condvar` objects, which
//! would block the checker's single replay thread — and explores every
//! reachable interleaving of 3 participants per protocol.
//!
//! Each model comes in two flavors:
//!
//! * the **shipped protocol**, which the checker must pass clean
//!   (correct variants declare reduced footprints where a step
//!   provably touches only private state, letting DPOR skip
//!   equivalent orders);
//! * a **seeded-bug variant** reintroducing the classic mistake the
//!   shipped code avoids — a split check-then-act in place of the
//!   single-flight recheck, parking a world before the job stops
//!   driving it, a torn two-step tuned-cache commit. Buggy variants
//!   keep the default serial footprints so exploration is exhaustive,
//!   and the checker must report each with a concrete schedule prefix.

use miniloom::{CheckOptions, ExploreError, Footprint, Model, Report};

/// Modeled location: the single-flight inflight map + cache mutexes.
const SF: usize = 0;
/// Modeled location: the world pool's parked map mutex.
const POOL: usize = 1;
/// Modeled location: the tuned cache's LRU mutex.
const CACHE: usize = 2;
/// Modeled location: the tuned entry's buffer (built, then published).
const ENTRY: usize = 3;
/// Modeled locations `WORLD + w`: the fabric of pooled world `w`.
const WORLD: usize = 10;

// ---------------------------------------------------------------------------
// Single-flight compilation
// ---------------------------------------------------------------------------

/// How a modeled compile call was satisfied (mirrors
/// [`crate::compiler::Provenance`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Prov {
    Hit,
    Coalesced,
    Compiled,
}

/// A requester's current plan of record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Decision {
    /// Serve from cache.
    Hit,
    /// Wait on the open flight and share its outcome.
    Join,
    /// Open the flight and own the compilation.
    Lead,
}

/// The per-key flight slot of the inflight map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
enum FlightState {
    /// No flight for the key.
    #[default]
    Idle,
    /// A leader opened the flight; the compiler may run.
    Open,
    /// Outcome published, leader has not retired the entry yet.
    Done,
}

/// Two requesters racing one key through the single-flight
/// [`crate::compiler::Compiler`] protocol, with the pipeline execution
/// scripted as a third participant so its timing interleaves freely.
///
/// A late requester that finds the flight already retired adopts the
/// published outcome through the flight handle it would hold in the
/// real code (an `Arc<Flight>` outlives the inflight-map entry). On
/// the error path the real code would open a *second* flight and
/// recompile; the model adopts the shared deterministic error instead,
/// keeping the scripts finite without weakening the properties under
/// check — at most one compilation per flight, outcome shared with
/// every joiner, errors never cached.
pub struct SingleFlightModel {
    /// Model the error-sharing path: the pipeline fails.
    pub fail: bool,
    /// Seeded bug: the leader publishes its flight *without*
    /// re-validating cache and inflight map under the lock — the
    /// split check-then-act the shipped `get_recheck` dance prevents.
    skip_recheck: bool,
}

impl SingleFlightModel {
    /// The protocol as shipped; `fail` selects the error-sharing path.
    pub fn new(fail: bool) -> Self {
        SingleFlightModel {
            fail,
            skip_recheck: false,
        }
    }

    /// Deliberately buggy variant: check and act are split. The
    /// checker must report a duplicate-leader schedule.
    pub fn seeded_split_probe(fail: bool) -> Self {
        SingleFlightModel {
            skip_recheck: true,
            ..SingleFlightModel::new(fail)
        }
    }
}

/// Shadow state of one contended key.
#[derive(Default)]
pub struct FlightShadow {
    /// The artifact cache entry for the key (errors are never stored,
    /// structurally: only a successful artifact id fits).
    cache: Option<u32>,
    flight: FlightState,
    /// The published outcome; persists after retirement, like the
    /// `Arc<Flight>` a joiner holds.
    outcome: Option<Result<u32, ()>>,
    /// Pipeline compilations actually run.
    compiles: u32,
    /// Requester decisions as of their last probe step.
    decision: [Option<Decision>; 2],
    /// Requester results: outcome + provenance.
    result: [Option<(Result<u32, ()>, Prov)>; 2],
}

impl FlightShadow {
    /// The probe logic both requester steps share: cache first, then
    /// any live-or-published flight, else lead.
    fn probe(&self) -> Decision {
        if self.cache.is_some() {
            Decision::Hit
        } else if self.flight != FlightState::Idle || self.outcome.is_some() {
            Decision::Join
        } else {
            Decision::Lead
        }
    }
}

impl Model for SingleFlightModel {
    type State = FlightShadow;

    fn init(&self) -> FlightShadow {
        FlightShadow::default()
    }

    fn threads(&self) -> usize {
        3
    }

    fn steps(&self, tid: usize) -> usize {
        // Requesters: check, act, resolve. Compiler: one pipeline run.
        if tid < 2 {
            3
        } else {
            1
        }
    }

    fn step(&self, state: &mut FlightShadow, tid: usize, idx: usize) -> Result<(), String> {
        if tid == 2 {
            // The pipeline body of the leader's compile call.
            state.compiles += 1;
            let outcome = if self.fail { Err(()) } else { Ok(7) };
            if let Ok(a) = outcome {
                state.cache = Some(a);
            }
            state.outcome = Some(outcome);
            state.flight = FlightState::Done;
            return Ok(());
        }
        match idx {
            0 => {
                // Check: the optimistic probe outside the lock.
                state.decision[tid] = Some(state.probe());
            }
            1 => {
                // Act: publish the decision.
                if state.decision[tid] != Some(Decision::Lead) {
                    return Ok(());
                }
                if self.skip_recheck {
                    // Seeded bug: trust the stale probe.
                    if state.flight != FlightState::Idle {
                        return Err(format!(
                            "requester {tid} opened a second flight over an \
                             active one: duplicate compilation"
                        ));
                    }
                    if state.cache.is_some() || state.outcome.is_some() {
                        return Err(format!(
                            "requester {tid} opened a flight for an already-\
                             resolved key: missing recheck"
                        ));
                    }
                } else {
                    // Shipped path: re-validate under the inflight lock
                    // (the `get_recheck` + map-entry double check).
                    let fresh = state.probe();
                    if fresh != Decision::Lead {
                        state.decision[tid] = Some(fresh);
                        return Ok(());
                    }
                }
                state.flight = FlightState::Open;
            }
            _ => {
                // Resolve: record the outcome this requester observes.
                let (outcome, prov) = match state.decision[tid] {
                    Some(Decision::Hit) => {
                        (Ok(state.cache.expect("hit implies cached")), Prov::Hit)
                    }
                    Some(Decision::Join) => (
                        state.outcome.expect("resolve gated on outcome"),
                        Prov::Coalesced,
                    ),
                    Some(Decision::Lead) => {
                        let out = state.outcome.expect("resolve gated on Done");
                        state.flight = FlightState::Idle; // retire
                        (out, Prov::Compiled)
                    }
                    None => return Err(format!("requester {tid} resolved before probing")),
                };
                state.result[tid] = Some((outcome, prov));
            }
        }
        Ok(())
    }

    fn enabled(&self, state: &FlightShadow, tid: usize, idx: usize) -> bool {
        if tid == 2 {
            // The pipeline runs once a leader opened the flight.
            return state.flight == FlightState::Open;
        }
        if idx != 2 {
            return true;
        }
        match state.decision[tid] {
            Some(Decision::Hit) => true,
            // A joiner blocks on `Flight::wait` until publication.
            Some(Decision::Join) => state.outcome.is_some(),
            // The leader's compile call returns after the pipeline.
            Some(Decision::Lead) => state.flight == FlightState::Done,
            None => false,
        }
    }

    fn footprint(&self, tid: usize, idx: usize) -> Footprint {
        if self.skip_recheck {
            // Buggy variant: explore exhaustively.
            return Footprint::serial();
        }
        // Every step reads or writes the cache/inflight shadow under
        // their mutexes; resolve also writes the requester's own slot.
        let fp = Footprint::empty().sync(SF);
        if tid < 2 && idx == 2 {
            fp.write(WORLD + tid)
        } else {
            fp
        }
    }

    fn invariant(&self, state: &FlightShadow) -> Result<(), String> {
        if state.compiles > 1 {
            return Err(format!(
                "{} pipeline runs for one key: coalescing failed",
                state.compiles
            ));
        }
        if self.fail && state.cache.is_some() {
            return Err("a failed compilation was cached".into());
        }
        Ok(())
    }

    fn finalize(&self, state: &mut FlightShadow) -> Result<(), String> {
        for (tid, r) in state.result.iter().enumerate() {
            match r {
                None => return Err(format!("requester {tid} never resolved")),
                Some((out, prov)) => {
                    if out.is_err() != self.fail {
                        return Err(format!(
                            "requester {tid} got {out:?} on a fail={} run",
                            self.fail
                        ));
                    }
                    if self.fail && *prov == Prov::Hit {
                        return Err(format!("requester {tid} cache-hit an error"));
                    }
                }
            }
        }
        if state.compiles != 1 {
            return Err(format!(
                "expected exactly 1 pipeline run, saw {}",
                state.compiles
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Warm-world pool
// ---------------------------------------------------------------------------

/// Two jobs (checkout → drive → checkin) and one evicting requester (a
/// checkout that never returns its world — the errored-job path)
/// racing one [`crate::worlds::WorldPool`] key with `max_per_key = 1`.
///
/// The property: a world is driven only by the job it is checked out
/// to — never while parked, never by two jobs.
pub struct WorldPoolModel {
    /// Seeded bug: job 0 parks its world *before* its last step of
    /// driving it, so a concurrent checkout can start driving the same
    /// fabric.
    park_while_held: bool,
}

impl WorldPoolModel {
    /// The pool protocol as shipped.
    pub fn new() -> Self {
        WorldPoolModel {
            park_while_held: false,
        }
    }

    /// Deliberately buggy variant: check-in ordered before the job's
    /// final use. The checker must report a use-after-return schedule.
    pub fn seeded_park_while_held() -> Self {
        WorldPoolModel {
            park_while_held: true,
        }
    }
}

impl Default for WorldPoolModel {
    fn default() -> Self {
        WorldPoolModel::new()
    }
}

/// Shadow state of one pool key.
pub struct PoolShadow {
    /// Parked world ids (one key, cap 1).
    parked: Vec<usize>,
    /// `holder[w]` = the thread currently driving world `w`.
    holder: Vec<Option<usize>>,
    /// The world each thread currently holds.
    held: [Option<usize>; 3],
    /// The last world each thread checked out (survives checkin, for
    /// the seeded use-after-return).
    last: [Option<usize>; 3],
    created: u32,
    reused: u32,
}

const PARK_CAP: usize = 1;

impl PoolShadow {
    fn checkout(&mut self, tid: usize) -> Result<(), String> {
        let w = if let Some(w) = self.parked.pop() {
            self.reused += 1;
            if let Some(other) = self.holder[w] {
                return Err(format!(
                    "checkout of thread {tid} popped world {w} still held by thread {other}"
                ));
            }
            w
        } else {
            self.created += 1;
            self.holder.push(None);
            self.holder.len() - 1
        };
        self.holder[w] = Some(tid);
        self.held[tid] = Some(w);
        self.last[tid] = Some(w);
        Ok(())
    }

    fn checkin(&mut self, tid: usize) {
        if let Some(w) = self.held[tid].take() {
            self.holder[w] = None;
            if self.parked.len() < PARK_CAP {
                self.parked.push(w);
            }
        }
    }

    fn drive(&mut self, tid: usize) -> Result<(), String> {
        let Some(w) = self.last[tid] else {
            return Err(format!("thread {tid} drove a world before any checkout"));
        };
        match self.holder[w] {
            Some(h) if h == tid => Ok(()),
            Some(other) => Err(format!(
                "thread {tid} drove world {w} while thread {other} holds it: \
                 one fabric, two jobs"
            )),
            None => Err(format!(
                "thread {tid} drove world {w} after returning it (parked or dropped)"
            )),
        }
    }
}

impl Model for WorldPoolModel {
    type State = PoolShadow;

    fn init(&self) -> PoolShadow {
        // One world pre-parked: the warm pool the evictor competes for.
        PoolShadow {
            parked: vec![0],
            holder: vec![None],
            held: [None; 3],
            last: [None; 3],
            created: 0,
            reused: 0,
        }
    }

    fn threads(&self) -> usize {
        3
    }

    fn steps(&self, tid: usize) -> usize {
        // Jobs: checkout, drive, checkin. Evictor: checkout only.
        if tid < 2 {
            3
        } else {
            1
        }
    }

    fn step(&self, state: &mut PoolShadow, tid: usize, idx: usize) -> Result<(), String> {
        if tid == 2 {
            return state.checkout(tid);
        }
        // The seeded bug swaps job 0's drive and checkin.
        let idx = match (self.park_while_held && tid == 0, idx) {
            (true, 1) => 2,
            (true, 2) => 1,
            (_, i) => i,
        };
        match idx {
            0 => state.checkout(tid)?,
            1 => state.drive(tid)?,
            _ => state.checkin(tid),
        }
        Ok(())
    }

    fn footprint(&self, tid: usize, idx: usize) -> Footprint {
        if self.park_while_held {
            return Footprint::serial();
        }
        // Checkout/checkin mutate the pool under its mutex; driving
        // touches only the exclusively-held fabric (modeled per-thread:
        // ownership is what the checkout invariants prove).
        if tid < 2 && idx == 1 {
            Footprint::empty().write(WORLD + tid)
        } else {
            Footprint::empty().sync(POOL)
        }
    }

    fn invariant(&self, state: &PoolShadow) -> Result<(), String> {
        if state.parked.len() > PARK_CAP {
            return Err(format!(
                "{} worlds parked over cap {PARK_CAP}",
                state.parked.len()
            ));
        }
        for &w in &state.parked {
            if let Some(h) = state.holder[w] {
                return Err(format!("world {w} parked while held by thread {h}"));
            }
        }
        Ok(())
    }

    fn finalize(&self, state: &mut PoolShadow) -> Result<(), String> {
        let total = state.created + state.reused;
        if total != 3 {
            return Err(format!(
                "3 checkouts ran but created {} + reused {} = {total}",
                state.created, state.reused
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Tuned-plan cache
// ---------------------------------------------------------------------------

/// A tuner committing one tuned entry, an executor looking it up and
/// driving the result, and a second committer filling the LRU with
/// other keys — over the mutexed [`crate::cache::PlanCache`] that
/// backs [`crate::tuned::TunedCache`], capacity 2.
///
/// The property: a lookup observes either nothing or a *fully built*
/// immutable entry — commits are atomic publications, and an eviction
/// never claws back an entry a reader already holds.
pub struct TunedCacheModel {
    /// Seeded bug: the commit is torn in two — the tuner inserts a
    /// placeholder entry into the cache, then fills in the measured
    /// parameters. A lookup between the halves hands out a torn entry.
    torn_commit: bool,
}

impl TunedCacheModel {
    /// The protocol as shipped: build fully, then publish under the
    /// cache lock.
    pub fn new() -> Self {
        TunedCacheModel { torn_commit: false }
    }

    /// Deliberately buggy variant: insert-then-fill. The checker must
    /// report a torn-read schedule.
    pub fn seeded_torn_commit() -> Self {
        TunedCacheModel { torn_commit: true }
    }
}

impl Default for TunedCacheModel {
    fn default() -> Self {
        TunedCacheModel::new()
    }
}

/// Shadow state: an entry store (the `Arc<TunedEntry>` allocations)
/// plus the keyed LRU.
#[derive(Default)]
pub struct TunedShadow {
    /// `complete[id]` — whether entry `id`'s parameters are filled in.
    complete: Vec<bool>,
    /// LRU of (key, entry id), most recent last, capacity 2.
    cache: Vec<(u32, usize)>,
    /// The entry id the executor's lookup returned, if any.
    looked_up: Option<usize>,
    /// Whether the executor already ran its lookup.
    lookup_done: bool,
}

const TUNED_CAP: usize = 2;

impl TunedShadow {
    fn insert(&mut self, key: u32, id: usize) {
        self.cache.retain(|&(k, _)| k != key);
        self.cache.push((key, id));
        if self.cache.len() > TUNED_CAP {
            self.cache.remove(0); // least-recently-used is first
        }
    }
}

impl Model for TunedCacheModel {
    type State = TunedShadow;

    fn init(&self) -> TunedShadow {
        TunedShadow::default()
    }

    fn threads(&self) -> usize {
        3
    }

    fn steps(&self, _tid: usize) -> usize {
        2
    }

    fn step(&self, state: &mut TunedShadow, tid: usize, idx: usize) -> Result<(), String> {
        match (tid, idx) {
            (0, 0) => {
                // Tuner, first half. Shipped: build entry 0 privately.
                // Torn: insert the placeholder into the cache first.
                state.complete.push(!self.torn_commit);
                if self.torn_commit {
                    state.insert(0, 0);
                }
            }
            (0, _) => {
                // Tuner, second half. Shipped: publish the finished
                // entry. Torn: only now fill in the parameters.
                if self.torn_commit {
                    state.complete[0] = true;
                } else {
                    state.insert(0, 0);
                }
            }
            (1, 0) => {
                // Executor lookup: LRU get of key 0 with recency bump.
                state.lookup_done = true;
                if let Some(pos) = state.cache.iter().position(|&(k, _)| k == 0) {
                    let e = state.cache.remove(pos);
                    state.looked_up = Some(e.1);
                    state.cache.push(e);
                }
            }
            (1, _) => {
                // Executor drive: a returned entry must be fully built,
                // even if the LRU evicted it since (the Arc is ours).
                if let Some(id) = state.looked_up {
                    if !state.complete[id] {
                        return Err(format!("lookup handed out torn tuned entry {id}"));
                    }
                }
            }
            (_, i) => {
                // Second committer: two other keys, exercising the cap.
                let id = state.complete.len();
                state.complete.push(true);
                state.insert(10 + i as u32, id);
            }
        }
        Ok(())
    }

    fn footprint(&self, tid: usize, idx: usize) -> Footprint {
        if self.torn_commit {
            return Footprint::serial();
        }
        match (tid, idx) {
            // Private build of the entry buffer…
            (0, 0) => Footprint::empty().write(ENTRY),
            // …published under the cache lock.
            (0, _) => Footprint::empty().sync(CACHE),
            (1, 0) => Footprint::empty().sync(CACHE),
            // The drive dereferences only an Arc a *hit* returned —
            // immutable, and published-before-lookup via the cache
            // sync; a miss reads nothing. Declaring Read(ENTRY) here
            // would claim the miss path reads the buffer too and
            // report a false race, so the footprint stays empty.
            (1, _) => Footprint::empty(),
            (_, _) => Footprint::empty().sync(CACHE),
        }
    }

    fn invariant(&self, state: &TunedShadow) -> Result<(), String> {
        if state.cache.len() > TUNED_CAP {
            return Err(format!(
                "tuned cache holds {} entries over cap {TUNED_CAP}",
                state.cache.len()
            ));
        }
        Ok(())
    }

    fn finalize(&self, state: &mut TunedShadow) -> Result<(), String> {
        if !state.lookup_done {
            return Err("executor never ran its lookup".into());
        }
        if let Some(id) = state.looked_up {
            if !state.complete[id] {
                return Err(format!("schedule ended with torn entry {id} handed out"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Model-check the shipped single-flight protocol (`fail` selects the
/// error-sharing path).
pub fn check_single_flight(fail: bool) -> Result<Report, ExploreError> {
    miniloom::check(&SingleFlightModel::new(fail), &CheckOptions::default())
}

/// Model-check the shipped warm-world pool protocol.
pub fn check_world_pool() -> Result<Report, ExploreError> {
    miniloom::check(&WorldPoolModel::new(), &CheckOptions::default())
}

/// Model-check the shipped tuned-cache commit/lookup protocol.
pub fn check_tuned_cache() -> Result<Report, ExploreError> {
    miniloom::check(&TunedCacheModel::new(), &CheckOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flight_is_clean_on_both_outcome_paths() {
        for fail in [false, true] {
            let report = check_single_flight(fail)
                .unwrap_or_else(|e| panic!("single-flight fail={fail}: {e}"));
            assert!(report.schedules > 0);
            // 7!/(3!·3!·1!) = 140 raw merge orders.
            assert_eq!(report.unreduced, Some(140));
        }
    }

    #[test]
    fn split_probe_toctou_is_caught() {
        for fail in [false, true] {
            let err = miniloom::check(
                &SingleFlightModel::seeded_split_probe(fail),
                &CheckOptions::default(),
            )
            .expect_err("the split probe must double-lead somewhere");
            match err {
                ExploreError::Violation(v) => {
                    assert!(!v.schedule.is_empty());
                    assert!(
                        v.message.contains("duplicate") || v.message.contains("recheck"),
                        "{v}"
                    );
                }
                other => panic!("expected a Violation, got {other}"),
            }
        }
    }

    #[test]
    fn world_pool_is_clean_and_reduced() {
        let report = check_world_pool().expect("the shipped pool protocol is clean");
        assert_eq!(report.unreduced, Some(140));
        assert!(
            report.schedules < 140,
            "driving is private, DPOR must skip those orders: {report:?}"
        );
    }

    #[test]
    fn park_while_held_is_caught() {
        let err = miniloom::check(
            &WorldPoolModel::seeded_park_while_held(),
            &CheckOptions::default(),
        )
        .expect_err("a parked-then-driven world must be caught");
        match err {
            ExploreError::Violation(v) => {
                assert!(!v.schedule.is_empty());
                assert!(v.message.contains("drove world"), "{v}");
            }
            other => panic!("expected a Violation, got {other}"),
        }
    }

    #[test]
    fn tuned_cache_is_clean() {
        let report = check_tuned_cache().expect("the shipped commit protocol is clean");
        // 6!/(2!·2!·2!) = 90 raw merge orders.
        assert_eq!(report.unreduced, Some(90));
        assert!(report.schedules > 0);
    }

    #[test]
    fn torn_commit_is_caught() {
        let err = miniloom::check(
            &TunedCacheModel::seeded_torn_commit(),
            &CheckOptions::default(),
        )
        .expect_err("a lookup between the torn halves must be caught");
        match err {
            ExploreError::Violation(v) => {
                assert!(!v.schedule.is_empty());
                assert!(v.message.contains("torn"), "{v}");
            }
            other => panic!("expected a Violation, got {other}"),
        }
    }
}
