//! planc — the compiled-plan pipeline and plan-compilation service.
//!
//! Every way of running a stencil in this workspace flows through one
//! immutable artifact: a [`PlanArtifact`] is a compiled,
//! analyzer-approved bundle of step plan, decomposition, schedule
//! metadata, logical makespan, and kernel tier, sealed under a stable
//! [`PlanKey`] derived from the loop nest, machine spec, tile
//! parameter V, transport, and tier. Compilation is staged —
//! `front → decompose → optimize → analyze` — with a typed
//! [`CompileError`] naming the stage that failed, and the analyzer
//! preflight runs exactly once, at compile time; execution never
//! re-validates.
//!
//! Layers, bottom up:
//!
//! * [`spec`] — [`PlanRequest`]: what to compile (workload, kernel,
//!   machine, V, mode, transport, tier), plus the `key=value` wire
//!   format the service speaks.
//! * [`pipeline`] — the staged compiler producing a [`PlanArtifact`].
//! * [`cache`] — [`PlanCache`]: keyed LRU over compiled plans with
//!   hit/miss/eviction counters.
//! * [`compiler`] — [`Compiler`]: cache + single-flight batching of
//!   identical in-flight compilations.
//! * [`worlds`] — [`WorldPool`]: warm thread-backend worlds reused
//!   across execute jobs.
//! * [`tuned`] — [`TunedEntry`]/[`TunedCache`]: winning configurations
//!   committed by the `autotune` crate's measured-feedback loop.
//! * [`service`] — [`PlanService`]: bounded job queue + worker pool
//!   over all of the above, and the [`service::smoke`] load CI gates
//!   on.

pub mod artifact;
pub mod cache;
pub mod compiler;
pub mod error;
pub mod modelcheck;
pub mod pipeline;
pub mod service;
pub mod spec;
pub mod tuned;
pub mod worlds;

pub use artifact::{CompiledWorkload, ExecOptions, ExecOutcome, GridResult, PlanArtifact};
pub use cache::{CacheStats, PlanCache, PlanKey};
pub use compiler::{Compiler, CompilerStats, Provenance};
pub use error::CompileError;
pub use pipeline::compile;
pub use service::{
    smoke, JobRequest, JobResponse, JobTicket, PlanService, ServiceConfig, ServiceError,
    ServiceMetrics, SmokeReport,
};
pub use spec::{KernelName, MachineSpec, PlanRequest, TuneMode, VChoice, WorkloadSpec};
pub use tuned::{tuned_key, TunedCache, TunedEntry};
pub use worlds::{WorldPool, WorldPoolStats};
