//! [`PlanArtifact`]: the immutable, analyzer-approved output of plan
//! compilation.
//!
//! An artifact bundles everything an execution needs and nothing it
//! has to re-derive: the sealed [`Compiled2D`]/[`Compiled3D`] (which
//! carries the validated decomposition, the `StepPlan` and the
//! pre-flight [`AnalysisReport`]), the resolved tile height, the
//! closed-form time prediction, and the [`PlanKey`] identifying it in
//! the cache. Executing an artifact never re-validates, re-optimizes
//! or re-analyzes — pre-flight ran exactly once, at compile time.

use crate::cache::PlanKey;
use crate::spec::{KernelName, PlanRequest};
use crate::worlds::WorldPool;
use analyzer::AnalysisReport;
use msgpass::fault::FaultStats;
use msgpass::thread_backend::{LatencyModel, WorldConfig};
use std::time::Duration;
use stencil::engine::{EngineError, ExecMode};
use stencil::grid::{Grid2D, Grid3D};
use stencil::kernel::{Example1, Fused3D, LongestPath3D, Paper3D, Relax3D, Smooth2D};
use stencil::plan::{self, Compiled2D, Compiled3D};
use tiling_core::machine::KernelTier;

/// The sealed executable bundle inside an artifact.
#[derive(Clone, Copy, Debug)]
pub enum CompiledWorkload {
    /// A 2-D strip plan.
    Dim2(Compiled2D),
    /// A 3-D block plan.
    Dim3(Compiled3D),
}

/// Execution options.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Verify the distributed result against the sequential reference
    /// (bitwise for [`KernelTier::Bitwise`], epsilon-bounded for
    /// [`KernelTier::Fast`]).
    pub verify: bool,
}

/// The assembled result grid of an execution.
#[derive(Clone, Debug)]
pub enum GridResult {
    /// 2-D output.
    Dim2(Grid2D),
    /// 3-D output.
    Dim3(Grid3D),
}

impl GridResult {
    /// The 3-D grid, if this was a 3-D plan.
    pub fn dim3(&self) -> Option<&Grid3D> {
        match self {
            GridResult::Dim3(g) => Some(g),
            GridResult::Dim2(_) => None,
        }
    }

    /// The 2-D grid, if this was a 2-D plan.
    pub fn dim2(&self) -> Option<&Grid2D> {
        match self {
            GridResult::Dim2(g) => Some(g),
            GridResult::Dim3(_) => None,
        }
    }
}

/// What one execution of an artifact produced.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// The assembled grid.
    pub grid: GridResult,
    /// Wall-clock time of the parallel region.
    pub elapsed: Duration,
    /// Grid cells computed per second of parallel region.
    pub cells_per_sec: f64,
    /// `Some(ok)` when [`ExecOptions::verify`] was set.
    pub verified: Option<bool>,
    /// Per-rank fault counters (empty on the pooled-world path).
    pub faults: Vec<FaultStats>,
}

/// A compiled, analyzer-approved, immutable plan. See the module docs.
#[derive(Clone, Debug)]
pub struct PlanArtifact {
    pub(crate) key: PlanKey,
    pub(crate) request: PlanRequest,
    pub(crate) v: usize,
    pub(crate) compiled: CompiledWorkload,
    pub(crate) report: AnalysisReport,
    pub(crate) predicted_us: Option<f64>,
}

impl PlanArtifact {
    /// The cache key derived from the compilation inputs.
    pub fn key(&self) -> &PlanKey {
        &self.key
    }

    /// The request this artifact was compiled from.
    pub fn request(&self) -> &PlanRequest {
        &self.request
    }

    /// The resolved tile height (explicit or closed-form `V*`).
    pub fn v(&self) -> usize {
        self.v
    }

    /// The sealed executable bundle.
    pub fn compiled(&self) -> &CompiledWorkload {
        &self.compiled
    }

    /// The 3-D compiled plan, if this is a 3-D artifact.
    pub fn compiled3(&self) -> Option<&Compiled3D> {
        match &self.compiled {
            CompiledWorkload::Dim3(c) => Some(c),
            CompiledWorkload::Dim2(_) => None,
        }
    }

    /// The 2-D compiled plan, if this is a 2-D artifact.
    pub fn compiled2(&self) -> Option<&Compiled2D> {
        match &self.compiled {
            CompiledWorkload::Dim2(c) => Some(c),
            CompiledWorkload::Dim3(_) => None,
        }
    }

    /// The pre-flight static-analysis report (compiled exactly once).
    pub fn report(&self) -> &AnalysisReport {
        &self.report
    }

    /// The plan's logical makespan (analyzer step count).
    pub fn logical_makespan(&self) -> i64 {
        self.report.logical_makespan
    }

    /// Pipeline steps per rank.
    pub fn steps(&self) -> usize {
        match &self.compiled {
            CompiledWorkload::Dim2(c) => c.decomp().steps(),
            CompiledWorkload::Dim3(c) => c.decomp().steps(),
        }
    }

    /// World size the plan executes on.
    pub fn ranks(&self) -> usize {
        match &self.compiled {
            CompiledWorkload::Dim2(c) => c.ranks(),
            CompiledWorkload::Dim3(c) => c.ranks(),
        }
    }

    /// The schedule mode the plan was compiled for.
    pub fn mode(&self) -> ExecMode {
        self.request.mode
    }

    /// Closed-form predicted total time at the resolved height (µs),
    /// when the machine model admits one.
    pub fn predicted_us(&self) -> Option<f64> {
        self.predicted_us
    }

    /// Total grid cells one execution computes.
    pub fn cells(&self) -> usize {
        match &self.compiled {
            CompiledWorkload::Dim2(c) => {
                let d = c.decomp();
                d.nx * d.ny
            }
            CompiledWorkload::Dim3(c) => {
                let d = c.decomp();
                d.nx * d.ny * d.nz
            }
        }
    }

    /// The world configuration the artifact was compiled for: zero
    /// injected latency, the request's transport and tier, pre-flight
    /// skipped (it already ran at compile time).
    pub fn world_config(&self) -> WorldConfig {
        self.stamp(WorldConfig::new(LatencyModel::zero()))
    }

    /// Stamp the plan-owned fields onto a caller-supplied base config
    /// (latency, faults, reliability, workers and pinning stay the
    /// caller's): the transport and tier come from the compilation
    /// inputs, and the per-run pre-flight is off because it already ran
    /// at compile time.
    pub fn stamp(&self, base: WorldConfig) -> WorldConfig {
        let mut cfg = base;
        cfg.transport = self.request.transport;
        cfg.kernel_tier = self.request.tier;
        cfg.skip_preflight = true;
        cfg
    }

    /// Execute on a fresh world with the artifact's own configuration.
    pub fn execute(&self, opts: ExecOptions) -> Result<ExecOutcome, EngineError> {
        self.execute_with(&self.world_config(), opts)
    }

    /// Execute on a fresh world built from `base` with the plan-owned
    /// fields stamped over it (see [`PlanArtifact::stamp`]) — how the
    /// chaos harness runs a compiled plan under faults and injected
    /// latency.
    pub fn execute_with(
        &self,
        base: &WorldConfig,
        opts: ExecOptions,
    ) -> Result<ExecOutcome, EngineError> {
        let cfg = self.stamp(base.clone());
        match &self.compiled {
            CompiledWorkload::Dim3(c) => {
                let (grid, elapsed, faults) = self.run3(c, &cfg)?;
                Ok(self.outcome3(grid, elapsed, faults, opts))
            }
            CompiledWorkload::Dim2(c) => {
                let (grid, elapsed, faults) = self.run2(c, &cfg)?;
                Ok(self.outcome2(grid, elapsed, faults, opts))
            }
        }
    }

    /// Execute on a warm world checked out of `pool` (3-D plans; 2-D
    /// plans fall back to [`PlanArtifact::execute`]). The world is
    /// returned to the pool only on success — an errored world may hold
    /// undrained messages and is discarded.
    pub fn execute_pooled(
        &self,
        pool: &WorldPool,
        opts: ExecOptions,
    ) -> Result<ExecOutcome, EngineError> {
        let c = match &self.compiled {
            CompiledWorkload::Dim3(c) => c,
            CompiledWorkload::Dim2(_) => return self.execute(opts),
        };
        let cfg = self.world_config();
        let mut world = pool.checkout(&cfg, c.ranks());
        let result = self.run3_on(c, &mut world);
        match result {
            Ok((grid, elapsed)) => {
                pool.checkin(&cfg, world);
                Ok(self.outcome3(grid, elapsed, Vec::new(), opts))
            }
            Err(e) => Err(e), // world dropped: may hold undrained state
        }
    }

    fn run3(
        &self,
        c: &Compiled3D,
        cfg: &WorldConfig,
    ) -> Result<(Grid3D, Duration, Vec<FaultStats>), EngineError> {
        match self.request.kernel {
            KernelName::Paper3D => plan::run3d_with(Paper3D, c, cfg),
            KernelName::Relax3D => plan::run3d_with(Relax3D::default(), c, cfg),
            KernelName::Fused3D => plan::run3d_with(Fused3D::default(), c, cfg),
            KernelName::LongestPath3D => plan::run3d_with(LongestPath3D, c, cfg),
            k => unreachable!("2-D kernel {k:?} sealed into a 3-D plan"),
        }
    }

    fn run3_on(
        &self,
        c: &Compiled3D,
        world: &mut [msgpass::thread_backend::ThreadComm<f32>],
    ) -> Result<(Grid3D, Duration), EngineError> {
        let tier = self.request.tier;
        match self.request.kernel {
            KernelName::Paper3D => plan::run3d_on_world(Paper3D, c, tier, world),
            KernelName::Relax3D => plan::run3d_on_world(Relax3D::default(), c, tier, world),
            KernelName::Fused3D => plan::run3d_on_world(Fused3D::default(), c, tier, world),
            KernelName::LongestPath3D => plan::run3d_on_world(LongestPath3D, c, tier, world),
            k => unreachable!("2-D kernel {k:?} sealed into a 3-D plan"),
        }
    }

    fn run2(
        &self,
        c: &Compiled2D,
        cfg: &WorldConfig,
    ) -> Result<(Grid2D, Duration, Vec<FaultStats>), EngineError> {
        match self.request.kernel {
            KernelName::Example1 => plan::run2d_with(Example1, c, cfg),
            KernelName::Smooth2D => plan::run2d_with(Smooth2D::default(), c, cfg),
            k => unreachable!("3-D kernel {k:?} sealed into a 2-D plan"),
        }
    }

    fn seq3(&self, d: stencil::dist3d::Decomp3D) -> Grid3D {
        use stencil::seq::run_seq3d;
        match self.request.kernel {
            KernelName::Paper3D => run_seq3d(Paper3D, d.nx, d.ny, d.nz, d.boundary),
            KernelName::Relax3D => run_seq3d(Relax3D::default(), d.nx, d.ny, d.nz, d.boundary),
            KernelName::Fused3D => run_seq3d(Fused3D::default(), d.nx, d.ny, d.nz, d.boundary),
            KernelName::LongestPath3D => run_seq3d(LongestPath3D, d.nx, d.ny, d.nz, d.boundary),
            k => unreachable!("2-D kernel {k:?} sealed into a 3-D plan"),
        }
    }

    fn seq2(&self, d: stencil::dist2d::Decomp2D) -> Grid2D {
        use stencil::seq::run_seq2d;
        match self.request.kernel {
            KernelName::Example1 => run_seq2d(Example1, d.nx, d.ny, d.boundary),
            KernelName::Smooth2D => run_seq2d(Smooth2D::default(), d.nx, d.ny, d.boundary),
            k => unreachable!("3-D kernel {k:?} sealed into a 2-D plan"),
        }
    }

    /// The verification tolerance of the artifact's tier: bitwise for
    /// the pinned tier, ULP-scale for fast math.
    fn tolerance(&self) -> f32 {
        match self.request.tier {
            KernelTier::Bitwise => 0.0,
            KernelTier::Fast => 1e-4,
        }
    }

    fn outcome3(
        &self,
        grid: Grid3D,
        elapsed: Duration,
        faults: Vec<FaultStats>,
        opts: ExecOptions,
    ) -> ExecOutcome {
        let verified = opts.verify.then(|| {
            let c = self.compiled3().expect("3-D outcome");
            grid.max_abs_diff(&self.seq3(c.decomp())) <= self.tolerance()
        });
        ExecOutcome {
            cells_per_sec: self.cells() as f64 / elapsed.as_secs_f64().max(1e-12),
            grid: GridResult::Dim3(grid),
            elapsed,
            verified,
            faults,
        }
    }

    fn outcome2(
        &self,
        grid: Grid2D,
        elapsed: Duration,
        faults: Vec<FaultStats>,
        opts: ExecOptions,
    ) -> ExecOutcome {
        let verified = opts.verify.then(|| {
            let c = self.compiled2().expect("2-D outcome");
            grid.max_abs_diff(&self.seq2(c.decomp())) <= self.tolerance()
        });
        ExecOutcome {
            cells_per_sec: self.cells() as f64 / elapsed.as_secs_f64().max(1e-12),
            grid: GridResult::Dim2(grid),
            elapsed,
            verified,
            faults,
        }
    }
}
