//! A pool of prebuilt thread-backend worlds, reused across execute
//! jobs.
//!
//! Building a world allocates the full link mesh (slot rings, buffer
//! pools, a shared barrier); for service workloads that execute many
//! small plans the setup dominates. The pool keys finished worlds by
//! everything that shapes them — rank count, transport, latency model,
//! backoff cap — and hands them back out to the next matching job
//! (`stencil::plan::run3d_on_world` drives them). Reuse is sound
//! because every pooled run went through the compile-time analyzer,
//! which proves the plan drains all links: a successfully completed
//! job leaves the world empty. Errored jobs never check their world
//! back in.
//!
//! Worlds with a reliability layer or a fault plan are *never* pooled:
//! their link state (sequence ledgers, pending fault schedules) is
//! intentionally job-specific.

use msgpass::thread_backend::{build_world_with, ThreadComm, WorldConfig};
use msgpass::transport::TransportKind;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Everything that shapes a world, bit-exact.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct WorldKey {
    ranks: usize,
    /// Transport discriminant + slot count.
    transport: (u8, usize),
    /// Latency model constants, to-bits.
    latency: (u64, u64),
    backoff_ns: u128,
}

impl WorldKey {
    fn of(cfg: &WorldConfig, ranks: usize) -> Self {
        WorldKey {
            ranks,
            transport: match cfg.transport {
                TransportKind::Mpsc => (0, 0),
                TransportKind::SharedSlots { slots } => (1, slots),
            },
            latency: (
                cfg.latency.startup_us.to_bits(),
                cfg.latency.per_byte_us.to_bits(),
            ),
            backoff_ns: cfg.backoff_cap.as_nanos(),
        }
    }
}

/// Pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorldPoolStats {
    /// Worlds built from scratch.
    pub created: u64,
    /// Checkouts satisfied by a warm world.
    pub reused: u64,
    /// Worlds currently parked in the pool.
    pub parked: usize,
}

/// A keyed pool of prebuilt worlds. See the module docs.
pub struct WorldPool {
    parked: Mutex<HashMap<WorldKey, Vec<Vec<ThreadComm<f32>>>>>,
    created: AtomicU64,
    reused: AtomicU64,
    max_per_key: usize,
}

impl Default for WorldPool {
    fn default() -> Self {
        WorldPool::new(4)
    }
}

impl WorldPool {
    /// A pool parking at most `max_per_key` idle worlds per key.
    pub fn new(max_per_key: usize) -> Self {
        WorldPool {
            parked: Mutex::new(HashMap::new()),
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            max_per_key: max_per_key.max(1),
        }
    }

    /// Whether worlds of this configuration may be pooled at all.
    fn poolable(cfg: &WorldConfig) -> bool {
        cfg.reliability.is_none() && cfg.faults.is_none()
    }

    /// A world matching `cfg`, warm if one is parked, freshly built
    /// otherwise.
    pub fn checkout(&self, cfg: &WorldConfig, ranks: usize) -> Vec<ThreadComm<f32>> {
        if Self::poolable(cfg) {
            let key = WorldKey::of(cfg, ranks);
            if let Some(world) = self
                .parked
                .lock()
                .unwrap()
                .get_mut(&key)
                .and_then(|q| q.pop())
            {
                self.reused.fetch_add(1, Ordering::Relaxed);
                return world;
            }
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        build_world_with::<f32>(ranks, cfg)
    }

    /// Park a drained world for reuse. Call only after a *successful*
    /// run — an errored world may hold undrained messages and must be
    /// dropped instead. Non-poolable configurations are dropped
    /// silently.
    pub fn checkin(&self, cfg: &WorldConfig, world: Vec<ThreadComm<f32>>) {
        if !Self::poolable(cfg) {
            return;
        }
        let key = WorldKey::of(cfg, world.len());
        let mut g = self.parked.lock().unwrap();
        let q = g.entry(key).or_default();
        if q.len() < self.max_per_key {
            q.push(world);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> WorldPoolStats {
        WorldPoolStats {
            created: self.created.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            parked: self.parked.lock().unwrap().values().map(Vec::len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgpass::thread_backend::LatencyModel;

    fn cfg() -> WorldConfig {
        WorldConfig::new(LatencyModel::zero()).with_transport(TransportKind::shared_slots())
    }

    #[test]
    fn checkout_checkin_reuses() {
        let pool = WorldPool::new(2);
        let w = pool.checkout(&cfg(), 4);
        assert_eq!(w.len(), 4);
        pool.checkin(&cfg(), w);
        let _w2 = pool.checkout(&cfg(), 4);
        let s = pool.stats();
        assert_eq!(s.created, 1);
        assert_eq!(s.reused, 1);
    }

    #[test]
    fn different_configs_do_not_alias() {
        let pool = WorldPool::new(2);
        let w = pool.checkout(&cfg(), 4);
        pool.checkin(&cfg(), w);
        // Different rank count → fresh build.
        let _w2 = pool.checkout(&cfg(), 2);
        // Different transport → fresh build.
        let mpsc = WorldConfig::new(LatencyModel::zero());
        let _w3 = pool.checkout(&mpsc, 4);
        assert_eq!(pool.stats().reused, 0);
        assert_eq!(pool.stats().created, 3);
    }

    #[test]
    fn faulty_configs_never_pool() {
        use msgpass::fault::FaultPlan;
        let faulty = cfg().with_faults(FaultPlan::seeded(7));
        let pool = WorldPool::new(2);
        let world = pool.checkout(&faulty, 2);
        pool.checkin(&faulty, world);
        assert_eq!(pool.stats().parked, 0);
    }
}
