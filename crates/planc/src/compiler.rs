//! The caching, batching compiler: keyed cache + single-flight.
//!
//! [`Compiler`] wraps the staged pipeline with two service-grade
//! behaviors:
//!
//! * **keyed cache** — compiled artifacts are parked in a
//!   [`PlanCache`] under their [`PlanKey`]; identical requests return
//!   the same immutable `Arc<PlanArtifact>` without recompiling.
//! * **single-flight batching** — concurrent requests for the same key
//!   coalesce onto one in-flight compilation: the first caller
//!   compiles, everyone else blocks on the flight and shares its
//!   outcome (success *or* typed error — `CompileError` is `Clone`
//!   exactly for this).

use crate::artifact::PlanArtifact;
use crate::cache::{CacheStats, PlanCache, PlanKey};
use crate::error::CompileError;
use crate::pipeline;
use crate::spec::PlanRequest;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a compile call was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Found compiled in the cache.
    CacheHit,
    /// Coalesced onto another caller's in-flight compilation.
    Coalesced,
    /// Compiled here.
    Compiled,
}

struct Flight {
    done: Mutex<Option<Result<Arc<PlanArtifact>, CompileError>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn finish(&self, outcome: Result<Arc<PlanArtifact>, CompileError>) {
        *self.done.lock().unwrap() = Some(outcome);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Arc<PlanArtifact>, CompileError> {
        let mut g = self.done.lock().unwrap();
        while g.is_none() {
            g = self.cv.wait(g).unwrap();
        }
        g.as_ref().unwrap().clone()
    }
}

/// Compiler counters (cache counters live in [`CacheStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompilerStats {
    /// Pipeline compilations actually run.
    pub compiles: u64,
    /// Calls coalesced onto another caller's flight.
    pub coalesced: u64,
}

/// See the module docs.
pub struct Compiler {
    cache: PlanCache,
    inflight: Mutex<HashMap<PlanKey, Arc<Flight>>>,
    compiles: AtomicU64,
    coalesced: AtomicU64,
}

impl Compiler {
    /// A compiler whose cache holds at most `cache_cap` plans.
    pub fn new(cache_cap: usize) -> Self {
        Compiler {
            cache: PlanCache::new(cache_cap),
            inflight: Mutex::new(HashMap::new()),
            compiles: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Compile (or fetch) the artifact for `req`.
    pub fn compile(&self, req: &PlanRequest) -> Result<Arc<PlanArtifact>, CompileError> {
        self.compile_with_provenance(req).0
    }

    /// [`Compiler::compile`], also reporting how the call was
    /// satisfied.
    pub fn compile_with_provenance(
        &self,
        req: &PlanRequest,
    ) -> (Result<Arc<PlanArtifact>, CompileError>, Provenance) {
        let key = PlanKey::of(req);
        if let Some(hit) = self.cache.get(&key) {
            return (Ok(hit), Provenance::CacheHit);
        }
        // Miss: join or open the flight for this key.
        let (flight, leader) = {
            let mut g = self.inflight.lock().unwrap();
            match g.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    // Double-check the cache under the lock: a flight
                    // retires only after publishing its artifact, so a
                    // racing miss taken just before the retirement must
                    // land here as a hit, not a second compilation.
                    if let Some(hit) = self.cache.get_recheck(&key) {
                        return (Ok(hit), Provenance::CacheHit);
                    }
                    let f = Arc::new(Flight::new());
                    g.insert(key.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if !leader {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return (flight.wait(), Provenance::Coalesced);
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let outcome = pipeline::compile(req).map(Arc::new);
        if let Ok(a) = &outcome {
            self.cache.insert(key.clone(), Arc::clone(a));
        }
        // Publish to waiters, then close the flight so later misses
        // (e.g. after an eviction or an error) compile afresh.
        flight.finish(outcome.clone());
        self.inflight.lock().unwrap().remove(&key);
        (outcome, Provenance::Compiled)
    }

    /// Cache counters and occupancy.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Compiler counters.
    pub fn stats(&self) -> CompilerStats {
        CompilerStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_call_hits_cache() {
        let c = Compiler::new(8);
        let req = PlanRequest::grid3(8, 8, 64, 2, 2).with_v(16);
        let (a, p1) = c.compile_with_provenance(&req);
        assert_eq!(p1, Provenance::Compiled);
        let (b, p2) = c.compile_with_provenance(&req);
        assert_eq!(p2, Provenance::CacheHit);
        assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()));
        assert_eq!(c.stats().compiles, 1);
    }

    #[test]
    fn errors_are_shared_but_not_cached() {
        let c = Compiler::new(8);
        let bad = PlanRequest::grid3(9, 8, 64, 2, 2); // 9 % 2 != 0
        assert!(c.compile(&bad).is_err());
        assert!(c.compile(&bad).is_err());
        // Both calls compiled (errors don't enter the cache).
        assert_eq!(c.stats().compiles, 2);
        assert_eq!(c.cache_stats().hits, 0);
    }
}
