//! Property tests of the plan-cache key: key equality must coincide
//! exactly with request equality — no collisions across nest, machine,
//! V, tier, transport, mode, boundary, or tune-mode variations — and artifacts
//! compiled from equal keys must be the same plan.

use msgpass::transport::TransportKind;
use planc::{Compiler, KernelName, MachineSpec, PlanKey, PlanRequest, TuneMode};
use proptest::prelude::*;
use std::sync::Arc;
use stencil::engine::ExecMode;
use tiling_core::machine::{KernelTier, MachineParams};

/// One point in the request variation space, indexed per axis so the
/// property can compare requests structurally.
fn request_from(idx: (usize, usize, usize, usize, usize, usize, usize, usize)) -> PlanRequest {
    let (w, m, v, mode, t, tier, b, u) = idx;
    let base = match w {
        0 => PlanRequest::grid3(8, 8, 64, 2, 2),
        1 => PlanRequest::grid3(8, 8, 128, 2, 2),
        2 => PlanRequest::grid3(8, 8, 64, 2, 2).with_kernel(KernelName::Relax3D),
        3 => PlanRequest::strip2(40, 12, 4),
        _ => PlanRequest::source(
            "FOR i1 = 1 TO 8 DO\n FOR i2 = 1 TO 8 DO\n  FOR i3 = 1 TO 64 DO\n   A(i1, i2, i3) = sqrt(A(i1-1, i2, i3)) + A(i1, i2-1, i3) + A(i1, i2, i3-1)\n  ENDFOR\n ENDFOR\nENDFOR",
            vec![2, 2],
        ),
    };
    let base = match m {
        0 => base.with_machine(MachineSpec::Example1),
        1 => base.with_machine(MachineSpec::Paper),
        2 => base.with_machine(MachineSpec::Gigabit),
        3 => base.with_machine(MachineSpec::OsBypass),
        // Bit-identical params to the paper preset, but spelled as
        // Custom — must still key differently from the preset name.
        _ => base.with_machine(MachineSpec::Custom(
            MachineParams::paper_cluster().scale_communication(2.0),
        )),
    };
    let base = match v {
        0 => base.with_v(8),
        1 => base.with_v(16),
        _ => base, // Auto
    };
    let base = match mode {
        0 => base.with_mode(ExecMode::Overlapping),
        _ => base.with_mode(ExecMode::Blocking),
    };
    let base = match t {
        0 => base.with_transport(TransportKind::Mpsc),
        1 => base.with_transport(TransportKind::SharedSlots { slots: 4 }),
        _ => base.with_transport(TransportKind::shared_slots()),
    };
    let base = match tier {
        0 => base.with_tier(KernelTier::Bitwise),
        _ => base.with_tier(KernelTier::Fast),
    };
    let base = match b {
        0 => base.with_boundary(1.0),
        _ => base.with_boundary(0.5),
    };
    match u {
        0 => base,
        1 => base.with_tune(TuneMode::Calibration),
        _ => base.with_tune(TuneMode::Committed),
    }
}

fn axis_point() -> impl Strategy<Value = (usize, usize, usize, usize, usize, usize, usize, usize)> {
    // miniprop tuples cap at arity 6: nest, then flatten.
    (
        (0usize..5, 0usize..5, 0usize..3, 0usize..3),
        (0usize..2, 0usize..3, 0usize..2, 0usize..2),
    )
        .prop_map(|((w, m, v, u), (mode, t, tier, b))| (w, m, v, mode, t, tier, b, u))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Key equality ⟺ request equality: two independently drawn
    /// variation points key identically exactly when every axis
    /// matches. This is the no-collision property the cache's
    /// soundness rests on.
    #[test]
    fn key_equality_iff_request_equality(a in axis_point(), b in axis_point()) {
        let ra = request_from(a);
        let rb = request_from(b);
        let ka = PlanKey::of(&ra);
        let kb = PlanKey::of(&rb);
        prop_assert_eq!(ra == rb, ka == kb,
            "requests {:?} vs {:?}: request-eq and key-eq disagree", a, b);
        // Keys are deterministic: recomputing never changes them.
        prop_assert_eq!(&ka, &PlanKey::of(&ra));
    }

    /// Single-axis perturbations always change the key (each key
    /// component is actually reflected in the canonical form).
    #[test]
    fn every_axis_is_keyed(p in axis_point(), axis in 0usize..8, step in 1usize..3) {
        let bounds = [5usize, 5, 3, 2, 3, 2, 2, 3];
        let mut q = [p.0, p.1, p.2, p.3, p.4, p.5, p.6, p.7];
        q[axis] = (q[axis] + step) % bounds[axis];
        let moved = (q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]);
        prop_assume!(moved != p);
        let kp = PlanKey::of(&request_from(p));
        let kq = PlanKey::of(&request_from(moved));
        prop_assert!(kp != kq, "axis {} perturbation did not change the key", axis);
    }
}

/// Equal keys must hand back the *same* compiled artifact, and the
/// artifact must be sealed under exactly the key of its request —
/// across a compilable slice of every variation axis.
#[test]
fn equal_keys_share_artifacts_across_variations() {
    let c = Compiler::new(64);
    // Explicit-V points only (Auto on free-comm-like customs can
    // legitimately fail); every axis still varies.
    let points = [
        (0, 1, 0, 0, 0, 0, 0, 0),
        (0, 1, 0, 0, 0, 0, 1, 0),
        (0, 1, 0, 0, 1, 1, 0, 0),
        (0, 1, 0, 0, 0, 0, 0, 1),
        (1, 2, 1, 1, 2, 0, 0, 2),
        (2, 3, 0, 0, 0, 0, 0, 0),
        (3, 0, 0, 0, 2, 0, 0, 0),
        (4, 1, 1, 1, 0, 1, 0, 0),
    ];
    let mut artifacts = Vec::new();
    for p in points {
        let req = request_from(p);
        let key = PlanKey::of(&req);
        let a = c.compile(&req).expect("variation point must compile");
        assert_eq!(a.key(), &key, "artifact sealed under a foreign key");
        let again = c.compile(&req).unwrap();
        assert!(
            Arc::ptr_eq(&a, &again),
            "equal key did not share the artifact"
        );
        artifacts.push((key, a));
    }
    // Distinct points → distinct keys → distinct artifacts.
    for i in 0..artifacts.len() {
        for j in i + 1..artifacts.len() {
            assert_ne!(
                artifacts[i].0, artifacts[j].0,
                "key collision between variations"
            );
            assert!(!Arc::ptr_eq(&artifacts[i].1, &artifacts[j].1));
        }
    }
    assert_eq!(c.stats().compiles, points.len() as u64);
}
