//! Concurrency tests of the compilation service: cache hit/miss
//! behavior, single-flight coalescing, and mixed compile/execute load
//! under at least eight client threads.

use planc::{
    Compiler, ExecOptions, JobRequest, JobResponse, PlanRequest, PlanService, Provenance,
    ServiceConfig,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// Eight threads release simultaneously on one key: exactly one
/// pipeline compilation runs; the other seven either coalesce onto the
/// flight or hit the cache, and all eight get the same artifact.
#[test]
fn single_flight_coalesces_identical_requests() {
    let c = Arc::new(Compiler::new(8));
    let barrier = Arc::new(Barrier::new(8));
    let req = PlanRequest::grid3(8, 8, 2048, 2, 2).with_v(8);
    let compiled = Arc::new(AtomicU64::new(0));
    let joined = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let c = Arc::clone(&c);
        let barrier = Arc::clone(&barrier);
        let req = req.clone();
        let compiled = Arc::clone(&compiled);
        let joined = Arc::clone(&joined);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let (a, how) = c.compile_with_provenance(&req);
            match how {
                Provenance::Compiled => compiled.fetch_add(1, Ordering::Relaxed),
                Provenance::Coalesced | Provenance::CacheHit => {
                    joined.fetch_add(1, Ordering::Relaxed)
                }
            };
            a.unwrap()
        }));
    }
    let artifacts: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(
        compiled.load(Ordering::Relaxed),
        1,
        "more than one thread compiled"
    );
    assert_eq!(joined.load(Ordering::Relaxed), 7);
    assert_eq!(c.stats().compiles, 1);
    for a in &artifacts[1..] {
        assert!(
            Arc::ptr_eq(&artifacts[0], a),
            "threads saw different artifacts"
        );
    }
}

/// Eight threads over four distinct keys (two threads each): exactly
/// four compilations, never eight.
#[test]
fn distinct_keys_compile_once_each() {
    let c = Arc::new(Compiler::new(8));
    let barrier = Arc::new(Barrier::new(8));
    let reqs = [
        PlanRequest::grid3(8, 8, 1024, 2, 2).with_v(8),
        PlanRequest::grid3(8, 8, 1024, 2, 2).with_v(16),
        PlanRequest::grid3(4, 4, 1024, 2, 2).with_v(8),
        PlanRequest::strip2(64, 16, 4).with_v(16),
    ];
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let c = Arc::clone(&c);
            let barrier = Arc::clone(&barrier);
            let req = reqs[i % 4].clone();
            std::thread::spawn(move || {
                barrier.wait();
                c.compile(&req).unwrap()
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.stats().compiles, 4);
    let stats = c.cache_stats();
    // Every non-compiling call was either a coalesce or a cache hit.
    assert_eq!(stats.hits + c.stats().coalesced, 4);
}

/// The full service under eight clients firing a mixed compile/execute
/// load: everything completes, repeats hit the cache, executes verify
/// bitwise against the sequential reference, and warm worlds get
/// reused.
#[test]
fn service_mixed_load_hits_and_misses() {
    let svc = Arc::new(PlanService::start(ServiceConfig {
        workers: 4,
        queue_cap: 128,
        cache_cap: 16,
    }));
    let reqs = [
        PlanRequest::grid3(8, 8, 256, 2, 2).with_v(64),
        PlanRequest::grid3(4, 4, 512, 2, 2).with_v(128),
        PlanRequest::strip2(64, 16, 4).with_v(16),
    ];
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let svc = Arc::clone(&svc);
            let barrier = Arc::clone(&barrier);
            let reqs = reqs.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let mut tickets = Vec::new();
                for j in 0..6 {
                    let req = reqs[(i + j) % reqs.len()].clone();
                    let job = if (i + j) % 2 == 0 {
                        JobRequest::Execute(req, ExecOptions { verify: true })
                    } else {
                        JobRequest::Compile(req)
                    };
                    tickets.push(svc.try_submit(job).expect("queue_cap sized for the load"));
                }
                for t in tickets {
                    match t.wait().expect("job failed") {
                        JobResponse::Executed(_, out) => assert_eq!(out.verified, Some(true)),
                        JobResponse::Compiled(_) => {}
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let m = svc.metrics();
    assert_eq!(m.completed, 48);
    assert_eq!(m.rejected, 0);
    // Three distinct keys across 48 jobs: misses are bounded by
    // compiles + coalesces, and repeats must have hit.
    assert_eq!(m.compiler.compiles, 3);
    assert!(m.cache.hits > 0, "repeated load produced no cache hits");
    assert!(
        m.cache.hit_ratio() > 0.5,
        "hit ratio {:.2} too low for 3 keys / 48 jobs",
        m.cache.hit_ratio()
    );
    assert!(
        m.worlds.reused > 0,
        "execute jobs never reused a warm world"
    );
}
