//! # miniprop — offline property-testing facade
//!
//! A dependency-free stand-in for the subset of the [`proptest`] API this
//! workspace uses. The build environment has no network access to a crates
//! registry, so the workspace maps `proptest = { package = "miniprop" }`
//! onto this crate; the existing property-test suites compile unchanged.
//!
//! Supported surface:
//!
//! - `proptest! { #![proptest_config(..)] fn name(pat in strategy, ..) { .. } }`
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, `prop_oneof!`
//! - integer / float range strategies, tuple strategies (arity 1–6),
//!   `Just`, `prop::collection::vec`, `any::<bool>()`, `proptest::bool::ANY`
//! - combinators `prop_map`, `prop_filter`, `prop_filter_map`, `prop_flat_map`
//! - `ProptestConfig::with_cases`, `TestCaseError::{fail, reject}`
//!
//! Generation is a deterministic SplitMix64 stream seeded from the test
//! name, so failures reproduce across runs. There is **no shrinking**: a
//! failing case panics with its seed and the assertion message.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case driver: configuration, error type and the deterministic RNG.

    /// Run-time configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected (filter/`prop_assume!`); it does not count
        /// toward the required number of successes.
        Reject(String),
        /// The case failed an assertion; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A hard failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (the runner retries with fresh randomness).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    /// Result alias used by generated test bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded generator; the same seed replays the same case.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        })
    }

    /// Drive one `proptest!`-generated test: repeatedly generate inputs and
    /// run `case` until `cfg.cases` successes. Rejections retry (bounded);
    /// the first failure panics with the seed for reproduction.
    pub fn run(name: &str, cfg: &Config, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
        let base = fnv1a(name.as_bytes()) ^ 0xD6E8_FEB8_6659_FD93;
        let mut successes: u32 = 0;
        let mut attempts: u64 = 0;
        let max_attempts = u64::from(cfg.cases) * 64 + 1024;
        while successes < cfg.cases && attempts < max_attempts {
            attempts += 1;
            let seed = base.wrapping_add(attempts.wrapping_mul(0xA076_1D64_78BD_642F));
            let mut rng = TestRng::new(seed);
            match case(&mut rng) {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest '{name}' failed after {successes} passing case(s) \
                     (seed {seed:#018x}): {msg}"
                ),
            }
        }
        if successes < cfg.cases {
            panic!(
                "proptest '{name}': too many rejected cases \
                 ({successes}/{} passed in {attempts} attempts)",
                cfg.cases
            );
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait plus the concrete strategies and combinators.

    use crate::test_runner::TestRng;

    /// Marker returned when a strategy (or filter) could not produce a value.
    #[derive(Debug, Clone, Copy)]
    pub struct Reject;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value, or reject the case.
        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keep only values for which `pred` holds (bounded retries).
        fn prop_filter<F>(self, _whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, pred }
        }

        /// Combined filter + map: keep `Some` results (bounded retries).
        fn prop_filter_map<O, F>(self, _whence: impl Into<String>, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap { inner: self, f }
        }

        /// Generate a value, then generate from the strategy it maps to.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Result<T, Reject> {
            Ok(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Result<O, Reject> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    const FILTER_RETRIES: usize = 128;

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
            for _ in 0..FILTER_RETRIES {
                if let Ok(v) = self.inner.generate(rng) {
                    if (self.pred)(&v) {
                        return Ok(v);
                    }
                }
            }
            Err(Reject)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Result<O, Reject> {
            for _ in 0..FILTER_RETRIES {
                if let Ok(v) = self.inner.generate(rng) {
                    if let Some(o) = (self.f)(v) {
                        return Ok(o);
                    }
                }
            }
            Err(Reject)
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, Reject> {
            let first = self.inner.generate(rng)?;
            (self.f)(first).generate(rng)
        }
    }

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> Result<V, Reject>;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> Result<V, Reject> {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among boxed alternatives (used by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build a union over a non-empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> Result<V, Reject> {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let off = u128::from(rng.next_u64()) % span;
                    Ok(((self.start as i128) + off as i128) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    let off = u128::from(rng.next_u64()) % span;
                    Ok(((lo as i128) + off as i128) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                    assert!(self.start < self.end, "empty float range strategy");
                    let unit = rng.next_f64() as $t;
                    Ok(self.start + unit * (self.end - self.start))
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($($S:ident . $v:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
                    Ok(($(self.$v.generate(rng)?,)+))
                }
            }
        };
    }

    tuple_strategies!(A.0);
    tuple_strategies!(A.0, B.1);
    tuple_strategies!(A.0, B.1, C.2);
    tuple_strategies!(A.0, B.1, C.2, D.3);
    tuple_strategies!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategies!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    //! `Vec` strategies.

    use crate::strategy::{Reject, Strategy};
    use crate::test_runner::TestRng;

    /// Types convertible into `[min, max]` length bounds.
    pub trait IntoSizeRange {
        /// The inclusive `(min, max)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s of `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Reject> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Ok(out)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for the handful of types the workspace uses.

    use crate::strategy::{Reject, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Uniform `bool` strategy (also exposed as `proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> Result<bool, Reject> {
            Ok(rng.next_u64() & 1 == 1)
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolAny;
        fn arbitrary() -> BoolAny {
            BoolAny
        }
    }
}

pub mod bool {
    //! `proptest::bool` compatibility shim.

    /// Uniform `bool` strategy constant.
    pub const ANY: crate::arbitrary::BoolAny = crate::arbitrary::BoolAny;
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declare deterministic property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__miniprop_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__miniprop_tests! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __miniprop_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            // LINT: the macro wraps the user body in a closure it
            // immediately calls so `return`/`?` inside behave.
            #[allow(clippy::redundant_closure_call)]
            $crate::test_runner::run(
                stringify!($name),
                &($cfg),
                |__miniprop_rng| {
                    $(
                        let $pat = match $crate::strategy::Strategy::generate(
                            &($strat),
                            __miniprop_rng,
                        ) {
                            ::std::result::Result::Ok(v) => v,
                            ::std::result::Result::Err(_) => {
                                return ::std::result::Result::Err(
                                    $crate::test_runner::TestCaseError::reject("strategy"),
                                )
                            }
                        };
                    )+
                    let __miniprop_res: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    __miniprop_res
                },
            );
        }
        $crate::__miniprop_tests! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds. Mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`. Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Reject the current case unless `cond` holds. Mirrors `prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies. Mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..1000 {
            let v = (-5i64..=5).generate(&mut rng).unwrap();
            assert!((-5..=5).contains(&v));
            let u = (3usize..9).generate(&mut rng).unwrap();
            assert!((3..9).contains(&u));
            let f = (1.0f64..50.0).generate(&mut rng).unwrap();
            assert!((1.0..50.0).contains(&f));
        }
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = crate::test_runner::TestRng::new(42);
        let mut b = crate::test_runner::TestRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(
            (x, y) in (0usize..10, 0usize..10),
            flip in any::<bool>(),
            v in prop::collection::vec(1i64..=4, 2..6),
        ) {
            prop_assume!(x + y < 18);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (1..=4).contains(&e)));
            let z = if flip { x } else { y };
            prop_assert_eq!(z + 1, z + 1, "z was {}", z);
        }

        #[test]
        fn oneof_and_combinators(
            n in prop_oneof![
                Just(0usize),
                (1usize..4).prop_map(|k| k * 10),
                (5usize..8).prop_filter("even", |k| k % 2 == 1),
            ],
        ) {
            prop_assert!(n == 0 || (10..40).contains(&n) || n == 5 || n == 7);
        }
    }
}
