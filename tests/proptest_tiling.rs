//! Property-based tests of the tiling core: the supernode transform is
//! a bijection, legality implies an acyclic tile graph, the closed-form
//! communication formulas agree with brute-force counting, and the
//! schedule-length formulas equal the tile DAG's critical path.

use proptest::prelude::*;
use tiling_core::prelude::*;
use tiling_core::tile_graph::TileGraph;

/// Strategy: a 2-D or 3-D rectangular tiling with sides 1..=6.
fn rect_tiling() -> impl Strategy<Value = Tiling> {
    prop::collection::vec(1i64..=6, 2..=3).prop_map(|sides| Tiling::rectangular(&sides))
}

/// Strategy: a point within ±30 per coordinate, matching dims.
fn point(dims: usize) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-30i64..=30, dims)
}

/// Strategy: a non-negative dependence set contained in sides ≥ its
/// components (built against a given tiling).
fn contained_deps(sides: Vec<i64>) -> impl Strategy<Value = DependenceSet> {
    let dims = sides.len();
    let one = prop::collection::vec(0i64..=2, dims).prop_filter("non-zero & contained", {
        let sides = sides.clone();
        move |v| {
            v.iter().any(|&x| x > 0)
                && v[0] >= 0
                && v.iter().zip(&sides).all(|(&x, &s)| x >= 0 && x < s)
        }
    });
    prop::collection::vec(one, 1..=3).prop_map(move |vs| {
        let mut set = DependenceSet::new(dims);
        let mut seen = std::collections::BTreeSet::new();
        for v in vs {
            if seen.insert(v.clone()) {
                set.push(Dependence::new(v));
            }
        }
        set
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// r(j) = (tile, offset) reconstructs j, and the offset is in the
    /// fundamental domain.
    #[test]
    fn transform_is_bijective(t in rect_tiling(), j in point(3)) {
        let j = &j[..t.dims()];
        let (tile, off) = t.transform(j);
        prop_assert_eq!(t.reconstruct(&tile, &off), j.to_vec());
        // Offset within the origin tile.
        let sides = t.rectangular_sides().unwrap();
        for (o, s) in off.iter().zip(sides) {
            prop_assert!(*o >= 0 && o < s, "offset {:?}", off);
        }
        // And the tile coordinates match an independent floor-div.
        for d in 0..t.dims() {
            prop_assert_eq!(tile[d], j[d].div_euclid(sides[d]));
        }
    }

    /// Points of a tiled space are partitioned exactly by tiles.
    #[test]
    fn tiles_partition_space(
        sides in prop::collection::vec(1i64..=4, 2..=2),
        extents in prop::collection::vec(1i64..=9, 2..=2),
    ) {
        let t = Tiling::rectangular(&sides);
        let space = IterationSpace::from_extents(&extents);
        let ts = t.tiled_space(&space);
        let mut count = 0u64;
        for tile in ts.points() {
            for j in t.points_in_tile(&tile, &space) {
                prop_assert_eq!(t.tile_of(&j), tile.clone());
                count += 1;
            }
        }
        prop_assert_eq!(count, space.volume());
    }

    /// Formula (1) always equals brute-force boundary counting.
    #[test]
    fn v_comm_formula_equals_bruteforce(
        sides in prop::collection::vec(2i64..=5, 2..=2),
    ) {
        // Deps must be legal (≥ 0) and contained.
        let deps = DependenceSet::from_vectors(2, vec![vec![1, 0], vec![0, 1], vec![1, 1]]);
        let t = Tiling::rectangular(&sides);
        prop_assume!(t.contains_dependences(&deps));
        let brute = tiling_core::cost::v_comm_total_bruteforce(&t, &deps);
        prop_assert_eq!(
            v_comm_total(&t, &deps),
            Rational::from_int(brute as i128)
        );
    }

    /// A legal tiling's tile graph is acyclic, and both schedules are
    /// valid for it under their respective lag rules.
    #[test]
    fn legal_tiling_gives_acyclic_valid_schedules(
        sides in prop::collection::vec(2i64..=4, 2..=3),
        extents_mul in prop::collection::vec(1i64..=4, 2..=3),
    ) {
        prop_assume!(sides.len() == extents_mul.len());
        let t = Tiling::rectangular(&sides);
        let dims = sides.len();
        let deps = DependenceSet::units(dims);
        prop_assert!(t.is_legal(&deps));
        let extents: Vec<i64> = sides.iter().zip(&extents_mul).map(|(&s, &m)| s * m).collect();
        let space = IterationSpace::from_extents(&extents);
        let ts = t.tiled_space(&space);
        let tile_deps = t.tile_dependences(&deps);
        let g = TileGraph::build(&ts, &tile_deps);
        prop_assert!(g.topological_order().is_some());

        let no = NonOverlapSchedule::new(&ts);
        g.validate_times(|tile| no.time_of(tile, &ts), TileGraph::unit_lag)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;

        let ov = OverlapSchedule::new(&ts);
        let lag = TileGraph::overlap_lag(ov.mapping());
        g.validate_times(|tile| ov.time_of(tile, &ts), lag)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// Closed-form schedule lengths equal the DAG critical path for unit
    /// tile dependences (i.e. both schedules are optimal for their lag
    /// model — the UET / UET-UCT results).
    #[test]
    fn schedule_lengths_equal_critical_path(
        extents in prop::collection::vec(1i64..=6, 2..=3),
    ) {
        let dims = extents.len();
        let ts = IterationSpace::from_extents(&extents);
        let tile_deps = DependenceSet::units(dims);
        let g = TileGraph::build(&ts, &tile_deps);

        let no = NonOverlapSchedule::new(&ts);
        prop_assert_eq!(g.critical_path(TileGraph::unit_lag), no.schedule_length(&ts));

        let ov = OverlapSchedule::new(&ts);
        let lag = TileGraph::overlap_lag(ov.mapping());
        prop_assert_eq!(g.critical_path(lag), ov.schedule_length(&ts));
    }

    /// Mapping along the longest dimension minimizes the overlap
    /// schedule length (the space-schedule optimality of reference [1]).
    #[test]
    fn longest_dimension_mapping_is_optimal(
        extents in prop::collection::vec(1i64..=8, 2..=4),
    ) {
        let dims = extents.len();
        let ts = IterationSpace::from_extents(&extents);
        let lengths: Vec<i64> = (0..dims)
            .map(|d| OverlapSchedule::with_mapping(dims, d).schedule_length(&ts))
            .collect();
        let best = *lengths.iter().min().unwrap();
        let chosen = OverlapSchedule::new(&ts).schedule_length(&ts);
        prop_assert_eq!(chosen, best);
    }

    /// Tile dependence sets from the fast path always match the generic
    /// enumeration for legal contained dependences.
    #[test]
    fn tile_deps_fast_path_sound(
        sides in prop::collection::vec(2i64..=5, 2..=2),
    ) {
        let t = Tiling::rectangular(&sides.clone());
        let strat_result = contained_deps(sides);
        // Use a fixed dependence set derived from sides (deterministic
        // in this test body); the strategy above is exercised in the
        // next test.
        drop(strat_result);
        let deps = DependenceSet::from_vectors(2, vec![vec![1, 1], vec![1, 0]]);
        prop_assume!(t.contains_dependences(&deps));
        prop_assert_eq!(t.tile_dependences(&deps), t.tile_dependences_generic(&deps));
    }

    /// Same fast-path/generic agreement, with generated dependences.
    #[test]
    fn tile_deps_fast_path_sound_generated(
        (sides, deps) in prop::collection::vec(3i64..=5, 2..=2)
            .prop_flat_map(|sides| {
                let s2 = sides.clone();
                (Just(sides), contained_deps(s2))
            })
    ) {
        let t = Tiling::rectangular(&sides);
        prop_assume!(t.is_legal(&deps));
        prop_assume!(t.contains_dependences(&deps));
        prop_assert_eq!(t.tile_dependences(&deps), t.tile_dependences_generic(&deps));
    }

    /// Per-neighbor message volumes (fast rectangular path) equal exact
    /// fundamental-domain counting, for random shapes and contained
    /// dependence sets.
    #[test]
    fn neighbor_volumes_match_bruteforce(
        (sides, deps) in prop::collection::vec(3i64..=5, 2..=2)
            .prop_flat_map(|sides| {
                let s2 = sides.clone();
                (Just(sides), contained_deps(s2))
            }),
        mapping_dim in 0usize..2,
    ) {
        use tiling_core::mapping::{neighbor_messages, ProcessorMapping};
        let tiling = Tiling::rectangular(&sides);
        prop_assume!(tiling.is_legal(&deps));
        prop_assume!(tiling.contains_dependences(&deps));
        let mapping = ProcessorMapping::along(2, mapping_dim);
        let fast = neighbor_messages(&tiling, &deps, &mapping);
        // Brute force via the fundamental domain.
        let mut by_proc: std::collections::BTreeMap<Vec<i64>, i64> = Default::default();
        for d in deps.iter() {
            for j0 in tiling.fundamental_domain() {
                let shifted: Vec<i64> = j0
                    .iter()
                    .zip(d.components())
                    .map(|(&a, &b)| a + b)
                    .collect();
                let s = tiling.tile_of(&shifted);
                if s.iter().all(|&x| x == 0) {
                    continue;
                }
                let proc = mapping.processor_of(&s);
                if proc.iter().all(|&x| x == 0) {
                    continue;
                }
                *by_proc.entry(proc).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(fast.len(), by_proc.len());
        for m in &fast {
            prop_assert_eq!(
                by_proc.get(&m.processor_offset).copied(),
                Some(m.volume_points),
                "offset {:?}",
                m.processor_offset
            );
        }
    }

    /// Generated loops for random skewed domains scan exactly the
    /// transformed point set (codegen is verified, not just printed).
    #[test]
    fn codegen_scans_transformed_domains_exactly(
        extents in prop::collection::vec(1i64..=5, 2..=3),
        f1 in -2i64..=2,
        f2 in -2i64..=2,
    ) {
        use tiling_core::codegen::transformed_domain;
        use tiling_core::transform::Unimodular;
        let n = extents.len();
        let space = IterationSpace::from_extents(&extents);
        let mut t = Unimodular::skew(n, 1, 0, f1);
        if n == 3 {
            t = Unimodular::skew(n, 2, 1, f2).compose(&t);
        }
        let names: Vec<String> = (0..n).map(|d| format!("v{d}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let nest = transformed_domain(&space, &t, &refs);
        let mut got = nest.enumerate();
        let mut expected: Vec<Vec<i64>> =
            space.points().map(|p| t.apply_point(&p)).collect();
        got.sort();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// Tiled rectangular codegen visits every point of the space exactly
    /// once with consistent tile coordinates, for random sides/extents.
    #[test]
    fn tiled_codegen_partitions_space(
        sides in prop::collection::vec(1i64..=4, 2..=2),
        extents in prop::collection::vec(1i64..=9, 2..=2),
    ) {
        use tiling_core::codegen::tiled_rectangular;
        let tiling = Tiling::rectangular(&sides);
        let space = IterationSpace::from_extents(&extents);
        let nest = tiled_rectangular(&tiling, &space, &["i", "j"]);
        let mut seen = std::collections::BTreeSet::new();
        for p in nest.enumerate() {
            let (tile, point) = (&p[..2], &p[2..]);
            prop_assert_eq!(tiling.tile_of(point), tile.to_vec());
            prop_assert!(space.contains(point));
            prop_assert!(seen.insert(point.to_vec()));
        }
        prop_assert_eq!(seen.len() as u64, space.volume());
    }

    /// Linear schedules respect dependences whenever Π·d > 0 for all d.
    #[test]
    fn valid_linear_schedule_orders_dependences(
        pi in prop::collection::vec(1i64..=3, 2..=2),
        extents in prop::collection::vec(2i64..=6, 2..=2),
    ) {
        let sched = LinearSchedule::new(pi);
        let space = IterationSpace::from_extents(&extents);
        let deps = DependenceSet::example_1();
        prop_assume!(sched.is_valid(&deps));
        for j in space.points() {
            for d in deps.iter() {
                let succ: Vec<i64> = j.iter().zip(d.components()).map(|(&a, &b)| a + b).collect();
                if space.contains(&succ) {
                    prop_assert!(
                        sched.time_of(&succ, &space, &deps) > sched.time_of(&j, &space, &deps)
                    );
                }
            }
        }
    }
}
