//! Chaos tests: run the full 2-D/3-D distributed executors over the
//! *real* threaded transport while a seeded [`FaultPlan`] drops,
//! duplicates, reorders and delay-spikes their messages.
//!
//! The contract under test is the reliability layer's: every
//! *recoverable* fault (a dropped copy that survives in the link
//! ledger, a duplicate, a reordering, a latency spike) must be absorbed
//! without changing a single bit of the result, because the kernels are
//! single-assignment recurrences and the transport re-sequences and
//! re-fetches deterministically. An *unrecoverable* fault (a message
//! lost beyond recovery) must surface as a typed [`EngineError`] within
//! the configured retry schedule — never a hang, never an index panic.
//! Every run sits under a watchdog so a regression to the old
//! silent-deadlock behavior fails the test instead of wedging CI.
//!
//! Seeds are fixed by default and overridable via `CHAOS_SEED` for
//! soak-style exploration (`CHAOS_SEED=7 cargo test --test chaos_faults`).

use msgpass::prelude::*;
use proptest::prelude::*;
use std::time::Duration;
use stencil::dist2d::{run_dist2d_with, Decomp2D};
use stencil::dist3d::{run_dist3d_with, Decomp3D};
use stencil::kernel::{Example1, Paper3D};
use stencil::prelude::{EngineError, ExecMode};
use stencil::seq::{run_example1_seq, run_paper3d_seq};

/// Base seed for all chaos plans (override with `CHAOS_SEED=<n>`).
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// Run `f` on a helper thread and panic if it outlives `limit` — the
/// harness that turns a transport hang back into a test failure.
fn with_watchdog<R: Send + 'static>(limit: Duration, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(r) => {
            let _ = handle.join();
            r
        }
        Err(_) => panic!("watchdog: run exceeded {limit:?} — transport hang regression"),
    }
}

/// A recoverable storm: drops (recovered from the link ledger),
/// duplicates (discarded by sequence), reorders (re-sequenced) and
/// latency spikes (absorbed by the retry schedule).
fn recoverable_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_drops(0.15)
        .with_duplicates(0.10)
        .with_reorders(0.10)
        .with_delay_spikes(0.20, Duration::from_micros(500))
}

/// Both transports under test: the mpsc fallback and the zero-copy
/// shared-slot rings. The fault layer works on [`Payload`] handles, so
/// every chaos contract must hold identically on both.
fn transports() -> [TransportKind; 2] {
    [TransportKind::Mpsc, TransportKind::shared_slots()]
}

fn chaos_world(seed: u64, transport: TransportKind) -> WorldConfig {
    WorldConfig::new(LatencyModel::zero())
        .with_transport(transport)
        .with_reliability(ReliabilityConfig {
            recv_timeout: Duration::from_millis(50),
            max_retries: 6,
            backoff: Duration::from_millis(2),
        })
        .with_faults(recoverable_plan(seed))
}

#[test]
fn chaos_2d_recoverable_faults_preserve_bitwise_results() {
    let d = Decomp2D {
        nx: 40,
        ny: 12,
        ranks: 4,
        v: 5,
        boundary: 1.5,
    };
    let seq = run_example1_seq(d.nx, d.ny, d.boundary);
    for transport in transports() {
        for (i, mode) in [ExecMode::Blocking, ExecMode::Overlapping]
            .into_iter()
            .enumerate()
        {
            let seed = chaos_seed() + i as u64;
            let (grid, _, stats) = with_watchdog(Duration::from_secs(60), move || {
                run_dist2d_with(Example1, d, &chaos_world(seed, transport), mode)
            })
            .unwrap_or_else(|e| {
                panic!("{mode:?}/{transport:?} failed under recoverable faults: {e}")
            });
            assert_eq!(
                grid.max_abs_diff(&seq),
                0.0,
                "{mode:?}/{transport:?} result differs under faults"
            );
            let total: u64 = stats.iter().map(|s| s.total_injected()).sum();
            assert!(
                total > 0,
                "{mode:?}/{transport:?}: the plan injected nothing — test is vacuous"
            );
        }
    }
}

#[test]
fn chaos_3d_recoverable_faults_preserve_bitwise_results() {
    let d = Decomp3D {
        nx: 8,
        ny: 8,
        nz: 24,
        pi: 2,
        pj: 2,
        v: 5,
        boundary: 2.0,
    };
    let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
    for transport in transports() {
        for (i, mode) in [ExecMode::Blocking, ExecMode::Overlapping]
            .into_iter()
            .enumerate()
        {
            let seed = chaos_seed() ^ (0x3D00 + i as u64);
            let (grid, _, stats) = with_watchdog(Duration::from_secs(60), move || {
                run_dist3d_with(Paper3D, d, &chaos_world(seed, transport), mode)
            })
            .unwrap_or_else(|e| {
                panic!("{mode:?}/{transport:?} failed under recoverable faults: {e}")
            });
            assert_eq!(
                grid.max_abs_diff(&seq),
                0.0,
                "{mode:?}/{transport:?} result differs under faults"
            );
            let total: u64 = stats.iter().map(|s| s.total_injected()).sum();
            assert!(
                total > 0,
                "{mode:?}/{transport:?}: the plan injected nothing — test is vacuous"
            );
        }
    }
}

#[test]
fn chaos_3d_slot_lease_retransmission_is_bitwise_exact() {
    // The zero-copy corner case: a dropped message whose payload is a
    // *shared slot lease*. The ledger parking must keep the slot alive
    // (refcount, not a copy) while later sends keep flowing through the
    // same pool; the receiver's timeout recovery must then read the
    // parked lease's bits, not a recycled slot's. Target a mid-pipeline
    // drop on both wire directions and require both recoveries and a
    // bitwise-exact grid.
    let d = Decomp3D {
        nx: 4,
        ny: 4,
        nz: 32,
        pi: 2,
        pj: 2,
        v: 4,
        boundary: 1.0,
    };
    let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
    for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
        let cfg = WorldConfig::new(LatencyModel::zero())
            .with_transport(TransportKind::shared_slots())
            .with_reliability(ReliabilityConfig {
                recv_timeout: Duration::from_millis(20),
                max_retries: 6,
                backoff: Duration::from_millis(1),
            })
            .with_faults(
                FaultPlan::seeded(chaos_seed())
                    .targeted(FaultSite {
                        src: 0,
                        dst: 2,
                        tag: stencil::proto::tag(3, stencil::proto::DIR_I),
                        kind: FaultKind::Drop,
                    })
                    .targeted(FaultSite {
                        src: 1,
                        dst: 3,
                        tag: stencil::proto::tag(4, stencil::proto::DIR_I),
                        kind: FaultKind::Drop,
                    }),
            );
        let (grid, _, stats) = with_watchdog(Duration::from_secs(60), move || {
            run_dist3d_with(Paper3D, d, &cfg, mode)
        })
        .unwrap_or_else(|e| panic!("{mode:?} failed to recover a dropped slot lease: {e}"));
        assert_eq!(
            grid.max_abs_diff(&seq),
            0.0,
            "{mode:?}: retransmitted slot lease delivered stale or wrong bits"
        );
        let dropped: u64 = stats.iter().map(|s| s.dropped).sum();
        let recovered: u64 = stats.iter().map(|s| s.recovered).sum();
        assert_eq!(dropped, 2, "{mode:?}: both targeted drops must fire");
        assert_eq!(
            recovered, 2,
            "{mode:?}: both parked leases must be recovered"
        );
    }
}

/// Tight retry schedule for the unrecoverable cases: the typed error
/// must arrive within a small multiple of `worst_case_wait`, not after
/// CI-length hangs.
fn tight_reliability() -> ReliabilityConfig {
    ReliabilityConfig {
        recv_timeout: Duration::from_millis(10),
        max_retries: 2,
        backoff: Duration::from_millis(1),
    }
}

#[test]
fn chaos_2d_unrecoverable_loss_is_a_typed_error() {
    let d = Decomp2D {
        nx: 20,
        ny: 8,
        ranks: 2,
        v: 5,
        boundary: 1.0,
    };
    // Lose the step-1 j-face from rank 0 to rank 1, permanently.
    let tag = stencil::proto::tag(1, stencil::proto::DIR_J);
    for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
        let cfg = WorldConfig::new(LatencyModel::zero())
            .with_reliability(tight_reliability())
            .with_faults(FaultPlan::seeded(chaos_seed()).lose_at(0, 1, tag));
        let err = with_watchdog(Duration::from_secs(30), move || {
            run_dist2d_with(Example1, d, &cfg, mode)
        })
        .expect_err("a permanently lost face must fail the run");
        match err {
            EngineError::SequenceGap { from: 0, .. }
            | EngineError::Timeout { .. }
            | EngineError::RankFailed { .. } => {}
            other => panic!("{mode:?}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn chaos_3d_unrecoverable_loss_is_a_typed_error() {
    let d = Decomp3D {
        nx: 4,
        ny: 4,
        nz: 16,
        pi: 2,
        pj: 2,
        v: 4,
        boundary: 1.0,
    };
    // Corner flow: lose rank 0's step-0 i-face to rank 2.
    let tag = stencil::proto::tag(0, stencil::proto::DIR_I);
    for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
        let cfg = WorldConfig::new(LatencyModel::zero())
            .with_reliability(tight_reliability())
            .with_faults(FaultPlan::seeded(chaos_seed()).lose_at(0, 2, tag));
        let err = with_watchdog(Duration::from_secs(30), move || {
            run_dist3d_with(Paper3D, d, &cfg, mode)
        })
        .expect_err("a permanently lost face must fail the run");
        match err {
            EngineError::SequenceGap { from: 0, .. }
            | EngineError::Timeout { .. }
            | EngineError::RankFailed { .. } => {}
            other => panic!("{mode:?}: unexpected error {other:?}"),
        }
    }
}

proptest! {
    // Thread-spawning chaos cases are expensive; a handful of random
    // plans per run is plenty on top of the fixed-seed tests above.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random recoverable plans over random 2-D shapes: completion must
    /// stay bitwise-exact whatever the (seeded) fault schedule does.
    #[test]
    fn chaos_2d_random_plans_stay_bitwise_exact(
        seed in 0u64..1_000_000,
        ranks in 2usize..=3,
        by in 1usize..=3,
        nx in 6usize..=24,
        v in 1usize..=7,
    ) {
        let d = Decomp2D { nx, ny: ranks * by, ranks, v, boundary: 1.0 };
        let seq = run_example1_seq(d.nx, d.ny, d.boundary);
        let transport = if seed % 2 == 0 {
            TransportKind::Mpsc
        } else {
            TransportKind::shared_slots()
        };
        let cfg = chaos_world(chaos_seed() ^ seed, transport);
        let (grid, _, _) = with_watchdog(Duration::from_secs(60), move || {
            run_dist2d_with(Example1, d, &cfg, ExecMode::Overlapping)
        }).expect("recoverable plan must complete");
        prop_assert_eq!(grid.max_abs_diff(&seq), 0.0);
    }
}
