//! Property-based tests of the discrete-event cluster simulator:
//! determinism, lower bounds, monotonicity in machine parameters, and
//! deadlock-freedom of the generated programs.

use cluster_sim::prelude::*;
use proptest::prelude::*;
use tiling_core::machine::{AffineCost, MachineParams};
use tiling_core::prelude::*;

fn machine(fill_us: f64, t_t: f64, t_c: f64) -> MachineParams {
    MachineParams {
        t_c_us: t_c,
        t_s_us: 2.0 * fill_us,
        t_t_us_per_byte: t_t,
        bytes_per_elem: 4,
        fill_mpi_buffer: AffineCost::constant(fill_us),
        fill_kernel_buffer: AffineCost::constant(fill_us),
        transfer_curve: None,
    }
}

/// Strategy: a small paper-style problem.
fn problem() -> impl Strategy<Value = (ClusterProblem, i64)> {
    (1i64..=3, 1i64..=3, 2i64..=6, 2i64..=8).prop_map(|(p, q, steps, v)| {
        let bx = 2;
        let by = 2;
        let prob = ClusterProblem::new(
            Tiling::rectangular(&[bx, by, v]),
            DependenceSet::paper_3d(),
            IterationSpace::from_extents(&[bx * p, by * q, v * steps]),
            2,
        )
        .unwrap();
        (prob, steps)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated programs never deadlock and always produce a positive
    /// makespan, in every engine mode.
    #[test]
    fn generated_programs_deadlock_free(
        (prob, _) in problem(),
        fill in 1.0f64..50.0,
        t_t in 0.0f64..0.2,
        duplex in any::<bool>(),
    ) {
        let m = machine(fill, t_t, 1.0);
        let cfg = SimConfig::new(m).with_trace(false).with_duplex(duplex);
        let b = simulate(cfg, prob.blocking_programs(&m)).unwrap();
        let o = simulate(cfg, prob.overlapping_programs(&m)).unwrap();
        prop_assert!(b.makespan > SimTime::ZERO);
        prop_assert!(o.makespan > SimTime::ZERO);
    }

    /// The simulator is deterministic: identical inputs, identical
    /// traces and makespans.
    #[test]
    fn simulation_is_deterministic((prob, _) in problem(), fill in 1.0f64..30.0) {
        let m = machine(fill, 0.01, 1.0);
        let cfg = SimConfig::new(m);
        let a = simulate(cfg, prob.overlapping_programs(&m)).unwrap();
        let b = simulate(cfg, prob.overlapping_programs(&m)).unwrap();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.trace.intervals(), b.trace.intervals());
    }

    /// Compute time is a hard lower bound: the makespan is at least the
    /// busiest rank's total computation.
    #[test]
    fn makespan_at_least_compute((prob, steps) in problem(), fill in 1.0f64..30.0) {
        let _ = steps;
        let m = machine(fill, 0.02, 1.0);
        let cfg = SimConfig::new(m).with_trace(false);
        let res = simulate(cfg, prob.overlapping_programs(&m)).unwrap();
        // One rank's total computation (t_c = 1 µs/point) bounds the
        // makespan from below.
        let total_compute_us: f64 = (0..prob.steps())
            .map(|k| prob.tile_points(&[0, 0, k]) as f64)
            .sum();
        prop_assert!(
            res.makespan.as_us() + 1e-6 >= total_compute_us,
            "makespan {} < compute {}",
            res.makespan.as_us(),
            total_compute_us
        );
    }

    /// Raising communication costs never speeds the simulation up.
    #[test]
    fn monotone_in_fill_cost((prob, _) in problem()) {
        let cheap = machine(2.0, 0.005, 1.0);
        let pricey = machine(20.0, 0.05, 1.0);
        let cfg_c = SimConfig::new(cheap).with_trace(false);
        let cfg_p = SimConfig::new(pricey).with_trace(false);
        let a = simulate(cfg_c, prob.blocking_programs(&cheap)).unwrap();
        let b = simulate(cfg_p, prob.blocking_programs(&pricey)).unwrap();
        prop_assert!(b.makespan >= a.makespan);
    }

    /// Duplex DMA essentially never loses to a half-duplex NIC on the
    /// same program. "Essentially": greedy FIFO lane scheduling admits
    /// classic Graham-style anomalies — starting a transmission *earlier*
    /// can reorder a receiver's RX queue and delay a critical-path
    /// message — so a small regression (≤ ~2–3% on very short pipelines, under 0.5% at realistic
    /// depths) is possible and tolerated; systematic wins are required.
    #[test]
    fn duplex_never_materially_slower((prob, _) in problem(), fill in 1.0f64..30.0) {
        let m = machine(fill, 0.05, 1.0);
        let half = simulate(
            SimConfig::new(m).with_trace(false),
            prob.overlapping_programs(&m),
        )
        .unwrap();
        let full = simulate(
            SimConfig::new(m).with_trace(false).with_duplex(true),
            prob.overlapping_programs(&m),
        )
        .unwrap();
        prop_assert!(
            full.makespan.as_us() <= half.makespan.as_us() * 1.05,
            "full {} vs half {}",
            full.makespan,
            half.makespan
        );
    }

    /// With free communication, blocking and overlapping collapse to the
    /// same pipeline (compute-dominated), up to posting overhead = 0.
    #[test]
    fn free_communication_equalizes_schedules((prob, _) in problem()) {
        let m = MachineParams::free_communication(1.0);
        let cfg = SimConfig::new(m).with_trace(false);
        let b = simulate(cfg, prob.blocking_programs(&m)).unwrap();
        let o = simulate(cfg, prob.overlapping_programs(&m)).unwrap();
        // Both equal the compute critical path; overlapping may differ
        // only by zero-cost bookkeeping.
        prop_assert_eq!(b.makespan, o.makespan);
    }

    /// Trace accounting: per-rank CPU busy time never exceeds the
    /// rank's finish time, and compute time matches the program.
    #[test]
    fn trace_accounting_consistent((prob, _) in problem(), fill in 1.0f64..20.0) {
        let m = machine(fill, 0.01, 1.0);
        let cfg = SimConfig::new(m);
        let res = simulate(cfg, prob.overlapping_programs(&m)).unwrap();
        for rank in 0..prob.ranks() {
            let busy = res.trace.cpu_busy(rank);
            prop_assert!(busy <= res.finish[rank]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Message conservation: across the whole program set, every byte
    /// sent to rank r is received by rank r (per peer, per kind), for
    /// both builder outputs.
    #[test]
    fn messages_conserved((prob, _) in problem()) {
        use std::collections::HashMap;
        let m = machine(5.0, 0.01, 1.0);
        for programs in [prob.blocking_programs(&m), prob.overlapping_programs(&m)] {
            // (src, dst, tag) → (sent bytes, received bytes)
            let mut ledger: HashMap<(usize, usize, u64), (u64, u64)> = HashMap::new();
            for (rank, p) in programs.iter().enumerate() {
                for op in p.ops() {
                    match *op {
                        Op::Send { to, tag, bytes } | Op::Isend { to, tag, bytes, .. } => {
                            ledger.entry((rank, to, tag)).or_default().0 += bytes;
                        }
                        Op::Recv { from, tag, bytes } | Op::Irecv { from, tag, bytes, .. } => {
                            ledger.entry((from, rank, tag)).or_default().1 += bytes;
                        }
                        _ => {}
                    }
                }
            }
            for ((src, dst, tag), (sent, recvd)) in ledger {
                prop_assert_eq!(
                    sent, recvd,
                    "channel {}→{} tag {}: sent {} vs received {}",
                    src, dst, tag, sent, recvd
                );
            }
        }
    }

    /// The recorded trace's TX and RX lane busy times agree with the
    /// program's total message bytes (work conservation on the NIC).
    #[test]
    fn nic_busy_matches_message_volume((prob, _) in problem(), fill in 1.0f64..20.0) {
        let m = machine(fill, 0.01, 1.0);
        let cfg = SimConfig::new(m);
        let programs = prob.overlapping_programs(&m);
        // Expected per-rank TX busy: Σ over isends (fill_kernel + wire).
        let expected_tx: Vec<f64> = programs
            .iter()
            .map(|p| {
                p.ops()
                    .iter()
                    .map(|op| match *op {
                        Op::Isend { bytes, .. } => {
                            m.fill_kernel_buffer.eval(bytes as f64)
                                + m.transmit_us(bytes as f64)
                        }
                        _ => 0.0,
                    })
                    .sum()
            })
            .collect();
        let res = simulate(cfg, programs).unwrap();
        for (rank, &expected) in expected_tx.iter().enumerate() {
            let tx: f64 = res
                .trace
                .for_rank(rank)
                .filter(|iv| iv.activity == Activity::TxBusy)
                .map(|iv| (iv.end - iv.start).as_us())
                .sum();
            prop_assert!(
                (tx - expected).abs() < 0.5,
                "rank {}: tx busy {} vs expected {}",
                rank, tx, expected
            );
        }
    }
}

/// Wire latency shifts a two-rank ping stream by exactly the latency.
#[test]
fn wire_latency_shifts_delivery() {
    let m = machine(5.0, 0.01, 1.0);
    let build = || {
        let mut a = Program::new();
        a.send(1, 0, 400);
        let mut b = Program::new();
        b.recv(0, 0, 400);
        vec![a, b]
    };
    let base = simulate(SimConfig::new(m), build()).unwrap();
    let delayed = simulate(SimConfig::new(m).with_wire_latency_us(77.0), build()).unwrap();
    assert_eq!(delayed.finish[1].as_us() - base.finish[1].as_us(), 77.0);
}
