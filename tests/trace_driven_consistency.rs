//! Cross-crate consistency of the trace-driven path: recording the real
//! stencil executors yields simulator programs whose *structure* matches
//! what the program builders generate directly from the tiling — the
//! two independent routes to a `ProcNB` program must agree on every
//! message (count, destination, bytes), differing only in compute
//! durations (measured vs modeled).

use cluster_sim::program::{Op, Program};
use overlap_tiling::prelude::*;
use stencil::dist3d::run_rank3d;

/// The multiset of communication ops (kind, peer, bytes), sorted. The
/// executor and the builder may order the two sends *within* one step
/// differently (i-face first vs sorted processor offsets) — semantically
/// equivalent — so the comparison is order-insensitive but exact on
/// counts, peers and payload sizes.
fn comm_signature(p: &Program) -> Vec<String> {
    let mut sig: Vec<String> = p
        .ops()
        .iter()
        .filter_map(|op| match op {
            Op::Send { to, bytes, .. } => Some(format!("S{to}:{bytes}")),
            Op::Recv { from, bytes, .. } => Some(format!("R{from}:{bytes}")),
            Op::Isend { to, bytes, .. } => Some(format!("IS{to}:{bytes}")),
            Op::Irecv { from, bytes, .. } => Some(format!("IR{from}:{bytes}")),
            _ => None,
        })
        .collect();
    sig.sort();
    sig
}

fn setup() -> (Decomp3D, ClusterProblem) {
    let d = Decomp3D {
        nx: 4,
        ny: 4,
        nz: 64,
        pi: 2,
        pj: 2,
        v: 16,
        boundary: 1.0,
    };
    let problem = ClusterProblem::new(
        Tiling::rectangular(&[2, 2, 16]),
        DependenceSet::paper_3d(),
        IterationSpace::from_extents(&[4, 4, 64]),
        2,
    )
    .unwrap();
    (d, problem)
}

#[test]
fn recorded_blocking_matches_builder_structure() {
    let (d, problem) = setup();
    let machine = MachineParams::paper_cluster();
    let (_, recorded) =
        record_sequential::<f32, _, _>(4, |comm| run_rank3d(comm, Paper3D, d, ExecMode::Blocking));
    let built = problem.blocking_programs(&machine);
    for rank in 0..4 {
        assert_eq!(
            comm_signature(&recorded[rank]),
            comm_signature(&built[rank]),
            "rank {rank}"
        );
    }
}

#[test]
fn recorded_overlap_matches_builder_structure() {
    let (d, problem) = setup();
    let machine = MachineParams::paper_cluster();
    let (_, recorded) = record_sequential::<f32, _, _>(4, |comm| {
        run_rank3d(comm, Paper3D, d, ExecMode::Overlapping)
    });
    let built = problem.overlapping_programs(&machine);
    for rank in 0..4 {
        assert_eq!(
            comm_signature(&recorded[rank]),
            comm_signature(&built[rank]),
            "rank {rank}"
        );
    }
}

#[test]
fn recorded_programs_simulate_with_overlap_advantage() {
    // With compute durations replaced by the paper's t_c (modeled), the
    // recorded structure must show the same overlap-wins behaviour as
    // the built programs. Here we keep measured compute and check both
    // replays complete and rank deterministically.
    let (d, _) = setup();
    let (_, blocking) =
        record_sequential::<f32, _, _>(4, |comm| run_rank3d(comm, Paper3D, d, ExecMode::Blocking));
    let (_, overlap) = record_sequential::<f32, _, _>(4, |comm| {
        run_rank3d(comm, Paper3D, d, ExecMode::Overlapping)
    });
    let machine = MachineParams::paper_cluster();
    let cfg = SimConfig::new(machine).with_trace(false);
    let b = simulate(cfg, blocking).unwrap();
    let o = simulate(cfg, overlap).unwrap();
    // On this tiny instance with measured (modern, tiny) compute the
    // communication dominates; overlap must still not lose.
    assert!(
        o.makespan.as_us() <= b.makespan.as_us() * 1.02,
        "overlap {} vs blocking {}",
        o.makespan,
        b.makespan
    );
}

#[test]
fn recorded_executor_output_is_correct() {
    let (d, _) = setup();
    let (blocks, _) = record_sequential::<f32, _, _>(4, |comm| {
        run_rank3d(comm, Paper3D, d, ExecMode::Overlapping)
    });
    // Assemble and compare against the sequential reference.
    let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
    let grid = CartesianGrid::new(vec![d.pi, d.pj]);
    for (rank, block) in blocks.iter().enumerate() {
        let c = grid.coords_of(rank);
        let (bx, by) = (d.bx(), d.by());
        for i in 0..bx {
            for j in 0..by {
                for k in 0..d.nz {
                    let got = block[(i * by + j) * d.nz + k];
                    let want = seq.get((c[0] * bx + i) as i64, (c[1] * by + j) as i64, k as i64);
                    assert_eq!(got, want, "rank {rank} cell ({i},{j},{k})");
                }
            }
        }
    }
}
