//! Property tests pinning the pipelined-rank engine: on random shapes
//! (including partial last tiles, `V > extent`, and single-rank worlds),
//! every (dimensionality × strategy) combination must be **bitwise**
//! identical to both the preserved element-wise legacy executors (the
//! oracle) and the sequential reference. The engine replaced four
//! hand-rolled rank drivers; these tests are the contract that the
//! replacement changed nothing observable about the results.

use msgpass::thread_backend::LatencyModel;
use proptest::prelude::*;
use stencil::dist2d::{run_dist2d, Decomp2D};
use stencil::dist3d::{run_dist3d, Decomp3D, ExecMode};
use stencil::kernel::{Example1, Paper3D};
use stencil::seq::{run_example1_seq, run_paper3d_seq};

proptest! {
    // Thread-spawning tests: keep the case count modest. Each case
    // covers both strategies, so every combo gets the full case budget.
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// 3-D × {Blocking, Overlap} against oracle and sequential.
    #[test]
    fn engine_3d_matches_legacy_and_sequential(
        pi in 1usize..=2,
        pj in 1usize..=2,
        bx in 1usize..=3,
        by in 1usize..=3,
        nz in 3usize..=30,
        v in 1usize..=11, // regularly a partial last tile or V > nz
        boundary in 0.0f32..3.0,
    ) {
        let d = Decomp3D { nx: pi * bx, ny: pj * by, nz, pi, pj, v, boundary };
        let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let (engine, _) =
                run_dist3d(Paper3D, d, LatencyModel::zero(), mode).expect("valid decomp");
            let (oracle, _) = stencil::legacy::run_dist3d(Paper3D, d, LatencyModel::zero(), mode)
                .expect("valid decomposition");
            prop_assert_eq!(engine.max_abs_diff(&oracle), 0.0, "vs legacy oracle {:?}", mode);
            prop_assert_eq!(engine.max_abs_diff(&seq), 0.0, "vs sequential {:?}", mode);
        }
    }

    /// 2-D × {Blocking, Overlap} against oracle and sequential.
    #[test]
    fn engine_2d_matches_legacy_and_sequential(
        ranks in 1usize..=4,
        by in 1usize..=4,
        nx in 3usize..=40,
        v in 1usize..=9,
        boundary in 0.0f32..3.0,
    ) {
        let d = Decomp2D { nx, ny: ranks * by, ranks, v, boundary };
        let seq = run_example1_seq(d.nx, d.ny, d.boundary);
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let (engine, _) =
                run_dist2d(Example1, d, LatencyModel::zero(), mode).expect("valid decomp");
            let (oracle, _) = stencil::legacy::run_dist2d(Example1, d, LatencyModel::zero(), mode)
                .expect("valid decomposition");
            prop_assert_eq!(engine.max_abs_diff(&oracle), 0.0, "vs legacy oracle {:?}", mode);
            prop_assert_eq!(engine.max_abs_diff(&seq), 0.0, "vs sequential {:?}", mode);
        }
    }

    /// Injected latency changes the engine's timing, never its results.
    #[test]
    fn engine_results_are_latency_invariant(
        v in 1usize..=6,
        startup in 0.0f64..250.0,
        overlap in any::<bool>(),
    ) {
        let d = Decomp3D { nx: 4, ny: 4, nz: 14, pi: 2, pj: 2, v, boundary: 1.0 };
        let mode = if overlap { ExecMode::Overlapping } else { ExecMode::Blocking };
        let lat = LatencyModel { startup_us: startup, per_byte_us: 0.02 };
        let (with_lat, _) = run_dist3d(Paper3D, d, lat, mode).expect("valid decomp");
        let (without, _) =
            run_dist3d(Paper3D, d, LatencyModel::zero(), mode).expect("valid decomp");
        prop_assert_eq!(with_lat.max_abs_diff(&without), 0.0);
    }
}
