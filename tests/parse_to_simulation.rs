//! The full front-to-back pipeline from *source text* to a simulated
//! cluster run: parse the paper's kernel as written in §5, extract
//! dependences, tile, map, build both MPI programs, simulate, and check
//! the paper's claim — all starting from a string.

use overlap_tiling::prelude::*;

const PAPER_KERNEL: &str = "
    FOR i = 0 TO 15 DO
      FOR j = 0 TO 15 DO
        FOR k = 0 TO 8191 DO
          A(i, j, k) = sqrt(A(i-1, j, k)) + sqrt(A(i, j-1, k)) + sqrt(A(i, j, k-1))
        ENDFOR
      ENDFOR
    ENDFOR";

#[test]
fn text_to_speedup() {
    // Front-end.
    let nest = parse_loop_nest(PAPER_KERNEL).expect("parses");
    let deps = nest.dependences().expect("valid dependences");
    assert_eq!(deps.len(), 3);

    // Tile: 4×4 cross-section (one column per processor on a 4×4 grid),
    // height from the closed-form optimum — the §6 open problem's
    // answer, so no sweep is needed anywhere in this pipeline.
    let machine = MachineParams::paper_cluster();
    let cf = overlap_optimal_v(nest.space(), &deps, &machine, &[4, 4], 2);
    let v = cf.v_star_integer().clamp(1, 512);
    let tiling = Tiling::rectangular(&[4, 4, v]);
    assert!(tiling.is_legal(&deps));
    assert!(tiling.contains_dependences(&deps));

    // Build and simulate both schedules.
    let problem = ClusterProblem::new(tiling, deps, nest.space().clone(), 2).expect("layout");
    assert_eq!(problem.ranks(), 16);
    let cfg = SimConfig::new(machine).with_trace(false);
    let blocking = simulate(cfg, problem.blocking_programs(&machine)).expect("no deadlock");
    let overlap = simulate(cfg, problem.overlapping_programs(&machine)).expect("no deadlock");

    // The paper's claim, end to end from text: overlap wins decisively.
    let improvement = 1.0 - overlap.makespan.as_us() / blocking.makespan.as_us();
    assert!(
        improvement > 0.15,
        "improvement only {:.1}% (blocking {}, overlap {})",
        improvement * 100.0,
        blocking.makespan,
        overlap.makespan
    );

    // And the closed-form prediction tracks the simulated overlap time.
    let predicted_s = cf.predict_us(v as f64) * 1e-6;
    let simulated_s = overlap.makespan.as_secs();
    let diff = (predicted_s - simulated_s).abs() / simulated_s;
    assert!(
        diff < 0.15,
        "closed form {predicted_s:.4} s vs simulated {simulated_s:.4} s ({:.0}%)",
        diff * 100.0
    );
}

#[test]
fn text_to_real_execution() {
    // Same text, but executed for real on threads (scaled down) and
    // verified bitwise against the sequential reference.
    let src = "
        FOR i = 0 TO 3 DO
          FOR j = 0 TO 3 DO
            FOR k = 0 TO 127 DO
              A(i, j, k) = sqrt(A(i-1, j, k)) + sqrt(A(i, j-1, k)) + sqrt(A(i, j, k-1))
            ENDFOR
          ENDFOR
        ENDFOR";
    let nest = parse_loop_nest(src).expect("parses");
    let e = nest.space().extents();
    let d = Decomp3D {
        nx: e[0] as usize,
        ny: e[1] as usize,
        nz: e[2] as usize,
        pi: 2,
        pj: 2,
        v: 16,
        boundary: 1.0,
    };
    let rep = verify_paper3d(d, LatencyModel::zero(), ExecMode::Overlapping)
        .expect("valid decomposition");
    assert!(rep.passed());
}
