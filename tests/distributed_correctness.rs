//! Property-based correctness of the real distributed executors: for
//! randomized decompositions, tile heights and boundary values, both
//! execution modes must be **bitwise** identical to the sequential
//! reference, with and without injected latency.

use msgpass::thread_backend::LatencyModel;
use proptest::prelude::*;
use stencil::prelude::*;

proptest! {
    // Thread-spawning tests: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dist3d_bitwise_matches_sequential(
        pi in 1usize..=2,
        pj in 1usize..=2,
        bx in 1usize..=3,
        by in 1usize..=3,
        nz in 4usize..=40,
        v in 1usize..=12,
        boundary in 0.0f32..4.0,
        overlap in any::<bool>(),
    ) {
        let d = Decomp3D {
            nx: pi * bx,
            ny: pj * by,
            nz,
            pi,
            pj,
            v,
            boundary,
        };
        let mode = if overlap { ExecMode::Overlapping } else { ExecMode::Blocking };
        let rep = verify_paper3d(d, LatencyModel::zero(), mode).expect("valid decomposition");
        prop_assert!(rep.passed(), "max diff {}", rep.max_abs_diff);
    }

    #[test]
    fn dist2d_bitwise_matches_sequential(
        ranks in 1usize..=4,
        by in 1usize..=4,
        nx in 4usize..=48,
        v in 1usize..=10,
        boundary in 0.0f32..4.0,
        overlap in any::<bool>(),
    ) {
        let d = Decomp2D {
            nx,
            ny: ranks * by,
            ranks,
            v,
            boundary,
        };
        let mode = if overlap { ExecMode::Overlapping } else { ExecMode::Blocking };
        let rep = verify_example1(d, LatencyModel::zero(), mode).expect("valid decomposition");
        prop_assert!(rep.passed(), "max diff {}", rep.max_abs_diff);
    }

    /// Latency affects timing only, never values.
    #[test]
    fn latency_never_changes_results(
        v in 1usize..=8,
        startup in 0.0f64..300.0,
    ) {
        let d = Decomp3D {
            nx: 4,
            ny: 4,
            nz: 16,
            pi: 2,
            pj: 2,
            v,
            boundary: 1.0,
        };
        let lat = LatencyModel { startup_us: startup, per_byte_us: 0.01 };
        let rep = verify_paper3d(d, lat, ExecMode::Overlapping).expect("valid decomposition");
        prop_assert!(rep.passed());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The generic executors are bitwise-correct for *every* kernel, not
    /// just the paper's: randomized decompositions over the relaxation
    /// and longest-path 3-D kernels and the alignment/smoothing 2-D
    /// kernels.
    #[test]
    fn generic_kernels_bitwise_correct(
        pi in 1usize..=2,
        bx in 1usize..=3,
        nz in 4usize..=24,
        v in 1usize..=8,
        omega in 0.1f32..1.0,
        overlap in proptest::bool::ANY,
    ) {
        use stencil::kernel::{LongestPath3D, Relax3D};
        use stencil::seq::run_seq3d;
        use stencil::dist3d::run_dist3d;
        let d = Decomp3D {
            nx: pi * bx,
            ny: 2,
            nz,
            pi,
            pj: 2,
            v,
            boundary: 1.0,
        };
        let mode = if overlap { ExecMode::Overlapping } else { ExecMode::Blocking };
        let k = Relax3D { omega };
        let (dist, _) = run_dist3d(k, d, LatencyModel::zero(), mode).expect("valid decomp");
        let seq = run_seq3d(k, d.nx, d.ny, d.nz, d.boundary);
        prop_assert_eq!(dist.max_abs_diff(&seq), 0.0);

        let (dist, _) = run_dist3d(LongestPath3D, d, LatencyModel::zero(), mode)
            .expect("valid decomp");
        let seq = run_seq3d(LongestPath3D, d.nx, d.ny, d.nz, d.boundary);
        prop_assert_eq!(dist.max_abs_diff(&seq), 0.0);
    }

    #[test]
    fn generic_2d_kernels_bitwise_correct(
        ranks in 1usize..=3,
        by in 1usize..=3,
        nx in 4usize..=32,
        v in 1usize..=6,
        alphabet in 1u32..=5,
        overlap in proptest::bool::ANY,
    ) {
        use stencil::kernel::{Alignment2D, Smooth2D};
        use stencil::seq::run_seq2d;
        use stencil::dist2d::run_dist2d;
        let d = Decomp2D {
            nx,
            ny: ranks * by,
            ranks,
            v,
            boundary: 2.0,
        };
        let mode = if overlap { ExecMode::Overlapping } else { ExecMode::Blocking };
        let k = Alignment2D { alphabet };
        let (dist, _) = run_dist2d(k, d, LatencyModel::zero(), mode).expect("valid decomp");
        let seq = run_seq2d(k, d.nx, d.ny, d.boundary);
        prop_assert_eq!(dist.max_abs_diff(&seq), 0.0);

        let k = Smooth2D::default();
        let (dist, _) = run_dist2d(k, d, LatencyModel::zero(), mode).expect("valid decomp");
        let seq = run_seq2d(k, d.nx, d.ny, d.boundary);
        prop_assert_eq!(dist.max_abs_diff(&seq), 0.0);
    }
}

/// Both modes agree with each other exactly (transitively via seq, but
/// asserted directly here on a non-trivial shape).
#[test]
fn modes_agree_with_each_other() {
    let d = Decomp3D {
        nx: 6,
        ny: 4,
        nz: 33,
        pi: 3,
        pj: 2,
        v: 7,
        boundary: 1.5,
    };
    let (a, _) =
        run_paper3d_dist(d, LatencyModel::zero(), ExecMode::Blocking).expect("valid decomp");
    let (b, _) =
        run_paper3d_dist(d, LatencyModel::zero(), ExecMode::Overlapping).expect("valid decomp");
    assert_eq!(a.max_abs_diff(&b), 0.0);
}

/// All values remain finite over long pipelines (the damped Example 1
/// kernel and the √ kernel are both stable).
#[test]
fn long_pipeline_stays_finite() {
    let d = Decomp2D {
        nx: 512,
        ny: 8,
        ranks: 4,
        v: 32,
        boundary: 1.0,
    };
    let (g, _) =
        run_example1_dist(d, LatencyModel::zero(), ExecMode::Overlapping).expect("valid decomp");
    assert!(g.data().iter().all(|x| x.is_finite()));
}
