//! Property tests pinning the wave-kernel contract: for every 3-D
//! kernel, evaluating a [`Wave`] of independent pencils must be
//! **bitwise** identical to evaluating the same pencils one by one with
//! `eval_pencil` — for every wave width (including the narrow-wave
//! pencil fallback), every pencil length (including the `len % 8`
//! remainder lanes of the 8-wide vector pass), and ragged waves whose
//! pencils have unequal lengths. This is the invariant that lets the
//! tile walk regroup cells into chunked super-diagonal waves, and the
//! worker pool redistribute them across threads, without perturbing a
//! single bit of the distributed-vs-sequential verification.
//!
//! The fast tier ([`KernelTier::Fast`]) is *not* bitwise: it may
//! reassociate and drop domain guards. Its property is a ULP bound
//! against the pinned tier on the reachable (non-negative, contractive)
//! domain, plus NaN-freedom.

use proptest::prelude::*;
use stencil::kernel::{Fused3D, Kernel3D, LongestPath3D, Paper3D, Relax3D, Wave, MAX_WAVE};

/// Pencil shapes and inputs for one wave: `(len, km1, im1, jm1)` per
/// entry. Lengths are drawn small and independently so ragged waves and
/// 8-lane remainders are both routine.
fn pencils(max_m: usize, max_len: usize) -> impl Strategy<Value = Vec<(Vec<f32>, Vec<f32>, f32)>> {
    let pencil = (0..=max_len).prop_flat_map(|len| {
        (
            prop::collection::vec(0.0f32..4.0, len),
            prop::collection::vec(0.0f32..4.0, len),
            0.0f32..4.0,
        )
    });
    prop::collection::vec(pencil, 1..=max_m)
}

/// Evaluate the pencils both ways and require bit-for-bit equality;
/// then run the fast tier and bound its drift. Returns the pinned
/// outputs for kernel-specific follow-up assertions.
fn check_kernel<K: Kernel3D>(
    k: K,
    inputs: &[(Vec<f32>, Vec<f32>, f32)],
) -> Result<(), TestCaseError> {
    // Scalar reference: one eval_pencil call per pencil.
    let mut pinned: Vec<Vec<f32>> = Vec::new();
    for (n, (im1, jm1, km1)) in inputs.iter().enumerate() {
        let mut out = vec![0.0f32; im1.len()];
        k.eval_pencil(n as i64 + 1, 2, 1, im1, jm1, *km1, &mut out);
        pinned.push(out);
    }

    // Wave form (bitwise tier): same pencils, one batched call.
    let mut wave_out: Vec<Vec<f32>> = inputs.iter().map(|(a, _, _)| vec![0.0; a.len()]).collect();
    {
        let mut wave = Wave::new();
        let mut rest: &mut [Vec<f32>] = &mut wave_out;
        for (n, (im1, jm1, km1)) in inputs.iter().enumerate() {
            let (out, r) = rest.split_first_mut().unwrap();
            rest = r;
            wave.push(n as i64 + 1, 2, 1, im1, jm1, *km1, out);
        }
        k.eval_wave(&mut wave);
    }
    for (n, (got, want)) in wave_out.iter().zip(&pinned).enumerate() {
        for (z, (g, w)) in got.iter().zip(want).enumerate() {
            prop_assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "pencil {} cell {}: wave {} != pencil {}",
                n,
                z,
                g,
                w
            );
        }
    }

    // Fast tier: ULP-bounded against pinned on the reachable domain,
    // never NaN. The bound is loose — it catches catastrophic
    // divergence (a dropped guard going NaN, a wrong carry), not
    // rounding; the tier's contract is "close", not "equal".
    let mut fast_out: Vec<Vec<f32>> = inputs.iter().map(|(a, _, _)| vec![0.0; a.len()]).collect();
    {
        let mut wave = Wave::new();
        let mut rest: &mut [Vec<f32>] = &mut fast_out;
        for (n, (im1, jm1, km1)) in inputs.iter().enumerate() {
            let (out, r) = rest.split_first_mut().unwrap();
            rest = r;
            wave.push(n as i64 + 1, 2, 1, im1, jm1, *km1, out);
        }
        k.eval_wave_fast(&mut wave);
    }
    for (n, (got, want)) in fast_out.iter().zip(&pinned).enumerate() {
        for (z, (g, w)) in got.iter().zip(want).enumerate() {
            prop_assert!(
                g.is_finite(),
                "pencil {} cell {}: fast tier produced {}",
                n,
                z,
                g
            );
            let ulps = (g.to_bits() as i64 - w.to_bits() as i64).unsigned_abs();
            prop_assert!(
                ulps <= 1024 || (g - w).abs() <= 1e-5,
                "pencil {} cell {}: fast {} vs pinned {} ({} ulps)",
                n,
                z,
                g,
                w,
                ulps
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The paper's √ kernel: two-pass wave vs scalar chain.
    #[test]
    fn paper3d_wave_is_bitwise(inputs in pencils(MAX_WAVE, 40)) {
        check_kernel(Paper3D, &inputs)?;
    }

    /// Damped relaxation with a random (stable) ω.
    #[test]
    fn relax3d_wave_is_bitwise(inputs in pencils(MAX_WAVE, 40), omega in 0.05f32..1.0) {
        check_kernel(Relax3D { omega }, &inputs)?;
    }

    /// FMA smoothing with random contractive weights (2·wa + wc < 1).
    #[test]
    fn fused3d_wave_is_bitwise(inputs in pencils(MAX_WAVE, 40), wa in 0.01f32..0.45, wc in 0.01f32..0.09) {
        check_kernel(Fused3D { wa, wc }, &inputs)?;
    }

    /// A kernel with *no* wave override exercises the default
    /// pencil-by-pencil path (bitwise by construction — the test pins
    /// that the default stays that way).
    #[test]
    fn longest_path_wave_is_bitwise(inputs in pencils(MAX_WAVE, 24)) {
        check_kernel(LongestPath3D, &inputs)?;
    }
}

/// Exhaustive sweep of the length × width corner cases the proptests
/// sample: every pencil length 0..=33 (all `% 8` remainders, the empty
/// pencil, and a two-block span) at every wave width 1..=MAX_WAVE, with
/// ragged tails (pencil `n` is `n` cells shorter) so the interleaved
/// carry pass exercises its per-chain length guard.
#[test]
fn wave_matches_pencil_for_every_length_and_width() {
    for len in 0..=33usize {
        for m in 1..=MAX_WAVE {
            let inputs: Vec<(Vec<f32>, Vec<f32>, f32)> = (0..m)
                .map(|n| {
                    let l = len.saturating_sub(n);
                    let im1: Vec<f32> = (0..l)
                        .map(|z| 0.25 + ((n * 7 + z) % 13) as f32 * 0.3)
                        .collect();
                    let jm1: Vec<f32> = (0..l)
                        .map(|z| 0.5 + ((n * 5 + z) % 11) as f32 * 0.2)
                        .collect();
                    (im1, jm1, 1.0 + n as f32 * 0.1)
                })
                .collect();
            check_kernel(Paper3D, &inputs).unwrap();
            check_kernel(Relax3D::default(), &inputs).unwrap();
            check_kernel(Fused3D::default(), &inputs).unwrap();
        }
    }
}
