//! End-to-end checks of the pre-flight static analysis layer: every
//! decomposition the harness ships must pass, the report must agree
//! with the paper's schedule-length arithmetic, and the engine must
//! surface analyzer rejections as its own typed error.

use msgpass::thread_backend::{LatencyModel, WorldConfig};
use stencil::dist2d::Decomp2D;
use stencil::dist3d::{run_dist3d_with, Decomp3D, ExecMode};
use stencil::engine::EngineError;
use stencil::kernel::Relax3D;
use stencil::preflight::{check_plan2d, check_plan3d};

fn shipped_3d() -> Vec<Decomp3D> {
    let base = Decomp3D {
        nx: 8,
        ny: 8,
        nz: 4096,
        pi: 2,
        pj: 2,
        v: 128,
        boundary: 1.0,
    };
    vec![
        base,
        Decomp3D { nz: 2048, ..base },
        Decomp3D {
            nz: 512,
            v: 64,
            ..base
        },
        Decomp3D {
            nz: 65_536,
            v: 256,
            ..base
        },
        // Doc-example scale.
        Decomp3D {
            nx: 4,
            ny: 4,
            nz: 16,
            v: 4,
            ..base
        },
    ]
}

#[test]
fn every_shipped_3d_config_passes_preflight() {
    for d in shipped_3d() {
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let report = check_plan3d(&d, mode)
                .unwrap_or_else(|e| panic!("{d:?} under {mode:?} rejected: {e}"));
            assert_eq!(report.ranks, d.pi * d.pj);
            assert_eq!(report.steps, d.steps());
            // A 2×2 grid has 4 directed interior faces, one message
            // each per step.
            assert_eq!(report.messages, 4 * d.steps());
        }
    }
}

#[test]
fn every_shipped_2d_config_passes_preflight() {
    for d in [
        Decomp2D {
            nx: 10_000,
            ny: 1_000,
            ranks: 10,
            v: 10,
            boundary: 1.0,
        },
        Decomp2D {
            nx: 30,
            ny: 8,
            ranks: 4,
            v: 7,
            boundary: 2.0,
        },
    ] {
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let report = check_plan2d(&d, mode)
                .unwrap_or_else(|e| panic!("{d:?} under {mode:?} rejected: {e}"));
            assert_eq!(report.ranks, d.ranks);
            assert_eq!(report.messages, (d.ranks - 1) * d.steps());
        }
    }
}

#[test]
fn makespan_matches_schedule_length_arithmetic() {
    // §3/§4: blocking finishes after (hops + steps) time hyperplanes,
    // overlap after (2·hops + steps) — more planes, each far cheaper.
    let d = Decomp3D {
        nx: 8,
        ny: 8,
        nz: 1024,
        pi: 2,
        pj: 2,
        v: 128,
        boundary: 1.0,
    };
    let hops = (d.pi - 1) + (d.pj - 1);
    let b = check_plan3d(&d, ExecMode::Blocking).expect("clean");
    let o = check_plan3d(&d, ExecMode::Overlapping).expect("clean");
    assert_eq!(b.logical_makespan, (hops + d.steps()) as i64);
    assert_eq!(o.logical_makespan, (2 * hops + d.steps()) as i64);
}

#[test]
fn engine_wraps_analyzer_rejections() {
    let err: EngineError = analyzer::AnalysisError::IllegalSchedule {
        pi: vec![1, -1],
        dep: vec![1, 1],
        dot: 0,
    }
    .into();
    let msg = err.to_string();
    assert!(
        msg.contains("pre-flight analysis rejected the plan"),
        "unexpected message: {msg}"
    );
    assert!(
        msg.contains("illegal schedule"),
        "unexpected message: {msg}"
    );
}

#[test]
fn preflight_gate_is_transparent_to_results() {
    // The default path analyzes before spawning; the opt-out path skips
    // it. Both must produce bitwise-identical grids.
    let d = Decomp3D {
        nx: 4,
        ny: 4,
        nz: 32,
        pi: 2,
        pj: 2,
        v: 8,
        boundary: 1.0,
    };
    let checked = WorldConfig::new(LatencyModel::zero());
    assert!(!checked.skip_preflight);
    let unchecked = WorldConfig::new(LatencyModel::zero()).without_preflight();
    assert!(unchecked.skip_preflight);
    for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
        let (a, _, _) =
            run_dist3d_with(Relax3D::default(), d, &checked, mode).expect("checked run");
        let (b, _, _) =
            run_dist3d_with(Relax3D::default(), d, &unchecked, mode).expect("unchecked run");
        assert_eq!(a.max_abs_diff(&b), 0.0, "{mode:?}");
    }
}
