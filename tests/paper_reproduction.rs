//! End-to-end reproduction checks of the paper's headline numbers and
//! claims, at test-friendly scale.

use overlap_tiling::prelude::*;

/// §3 Example 1: T = 1099 × 364 t_c = 400 036 t_c ≈ 0.4 s.
#[test]
fn example_1_exact_numbers() {
    let machine = MachineParams::example_1();
    let nest = LoopNest::example_1();
    let deps = nest.dependences().unwrap();
    let tiling = Tiling::rectangular(&[10, 10]);
    let r = NonOverlapSchedule::with_mapping(2, 0).analyze(&tiling, &deps, nest.space(), &machine);
    assert_eq!(r.schedule_length, 1099);
    assert_eq!(r.v_comm_points, 20);
    assert!((r.step_us - 364.0).abs() < 1e-9);
    assert!((r.total_us - 400_036.0).abs() < 1e-6);
}

/// §4 Example 3: Π = (1,2), P = 1198, T ≈ 0.24 s.
#[test]
fn example_3_exact_numbers() {
    let machine = MachineParams::example_1();
    let nest = LoopNest::example_1();
    let deps = nest.dependences().unwrap();
    let tiling = Tiling::rectangular(&[10, 10]);
    let s = OverlapSchedule::with_mapping(2, 0);
    assert_eq!(s.pi(), vec![1, 2]);
    let r = s.analyze(
        &tiling,
        &deps,
        nest.space(),
        &machine,
        OverlapMode::DuplexDma,
    );
    assert_eq!(r.schedule_length, 1198);
    assert!((r.total_us - 239_600.0).abs() < 1e-6);
    assert!(r.is_cpu_bound());
}

/// The central claim, on the simulated cluster at reduced scale: the
/// overlapping schedule beats the non-overlapping one by a doubl-digit
/// percentage at a reasonable grain, for all three experiment layouts.
#[test]
fn overlap_beats_blocking_all_layouts() {
    let machine = MachineParams::paper_cluster();
    let cfg = SimConfig::new(machine).with_trace(false);
    // (cross-section, nz, V): miniatures of experiments i/ii/iii.
    for (bx, by, nz, v) in [
        (4i64, 4i64, 2048i64, 128i64),
        (4, 4, 4096, 128),
        (8, 8, 1024, 64),
    ] {
        let problem = ClusterProblem::new(
            Tiling::rectangular(&[bx, by, v]),
            DependenceSet::paper_3d(),
            IterationSpace::from_extents(&[bx * 4, by * 4, nz]),
            2,
        )
        .unwrap();
        let blocking = simulate(cfg, problem.blocking_programs(&machine)).unwrap();
        let overlap = simulate(cfg, problem.overlapping_programs(&machine)).unwrap();
        let improvement = 1.0 - overlap.makespan.as_us() / blocking.makespan.as_us();
        assert!(
            improvement > 0.10,
            "layout {bx}x{by}x{nz} V={v}: improvement only {:.1}%",
            improvement * 100.0
        );
    }
}

/// The U-shape of Figures 9–11: extremes of V lose to the middle.
#[test]
fn completion_time_vs_v_is_u_shaped() {
    let machine = MachineParams::paper_cluster();
    let cfg = SimConfig::new(machine).with_trace(false);
    let space = IterationSpace::from_extents(&[8, 8, 1024]);
    let run = |v: i64| {
        let problem = ClusterProblem::new(
            Tiling::rectangular(&[4, 4, v]),
            DependenceSet::paper_3d(),
            space.clone(),
            2,
        )
        .unwrap();
        simulate(cfg, problem.overlapping_programs(&machine))
            .unwrap()
            .makespan
            .as_us()
    };
    let fine = run(2);
    let mid = run(64);
    let coarse = run(256);
    assert!(mid < fine, "mid {mid} vs fine {fine}");
    assert!(mid < coarse, "mid {mid} vs coarse {coarse}");
}

/// Theory (eq. 5) tracks the simulation within a modest margin at the
/// paper-scale experiment i optimum (the paper reports 2.5–12%).
#[test]
fn theory_tracks_simulation() {
    let machine = MachineParams::paper_cluster();
    let v = 224; // simulated optimum of fig9
    let problem = ClusterProblem::new(
        Tiling::rectangular(&[4, 4, v]),
        DependenceSet::paper_3d(),
        IterationSpace::from_extents(&[16, 16, 16384]),
        2,
    )
    .unwrap();
    let cfg = SimConfig::new(machine).with_trace(false);
    let sim = simulate(cfg, problem.overlapping_programs(&machine))
        .unwrap()
        .makespan
        .as_us();
    let theory = OverlapSchedule::with_mapping(3, 2)
        .analyze(
            &Tiling::rectangular(&[4, 4, v]),
            &DependenceSet::paper_3d(),
            &IterationSpace::from_extents(&[16, 16, 16384]),
            &machine,
            OverlapMode::Serialized,
        )
        .total_us;
    let diff = (theory - sim).abs() / sim;
    assert!(
        diff < 0.20,
        "theory {theory} vs sim {sim}: {:.0}%",
        diff * 100.0
    );
}

/// The paper's packet sizes (Fig. 12 g_optimal row): tile faces at the
/// measured optima are 7104 / 8608 / 5248 bytes.
#[test]
fn packet_sizes_match_paper() {
    let deps = DependenceSet::paper_3d();
    for (sides, expect) in [
        (vec![4i64, 4, 444], 7104.0),
        (vec![4, 4, 538], 8608.0),
        (vec![8, 8, 164], 5248.0),
    ] {
        let t = Tiling::rectangular(&sides);
        assert_eq!(tiling_core::cost::message_bytes(&t, &deps, 0, 4), expect);
    }
}

/// Fig. 3 ablation ordering at paper scale: blocking ≥ half-duplex
/// overlap ≥ duplex overlap.
#[test]
fn ablation_ordering() {
    let machine = MachineParams::paper_cluster();
    let problem = ClusterProblem::new(
        Tiling::rectangular(&[4, 4, 128]),
        DependenceSet::paper_3d(),
        IterationSpace::from_extents(&[8, 8, 2048]),
        2,
    )
    .unwrap();
    let run = |duplex: bool, blocking: bool| {
        let cfg = SimConfig::new(machine)
            .with_trace(false)
            .with_duplex(duplex);
        let programs = if blocking {
            problem.blocking_programs(&machine)
        } else {
            problem.overlapping_programs(&machine)
        };
        simulate(cfg, programs).unwrap().makespan
    };
    let a = run(false, true);
    let b = run(false, false);
    let c = run(true, false);
    assert!(b < a, "half-duplex overlap {b} vs blocking {a}");
    assert!(c <= b, "duplex {c} vs half-duplex {b}");
}

/// The real threaded execution agrees with the sequential reference and
/// the overlap variant is not slower at a latency-dominant setting.
#[test]
fn threaded_backend_end_to_end() {
    let d = Decomp3D {
        nx: 4,
        ny: 4,
        nz: 256,
        pi: 2,
        pj: 2,
        v: 32,
        boundary: 1.0,
    };
    let lat = LatencyModel {
        startup_us: 300.0,
        per_byte_us: 0.0,
    };
    let rep_b = verify_paper3d(d, lat, ExecMode::Blocking).expect("valid decomposition");
    let rep_o = verify_paper3d(d, lat, ExecMode::Overlapping).expect("valid decomposition");
    assert!(rep_b.passed());
    assert!(rep_o.passed());
    assert!(rep_o.elapsed_secs <= rep_b.elapsed_secs * 1.05);
}
