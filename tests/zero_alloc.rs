//! Allocation discipline of the distributed executors.
//!
//! Two instruments:
//!
//! * a counting `#[global_allocator]` — on a single-rank world (no
//!   messages, so no `mpsc` internals in the picture) the total number
//!   of allocations must not depend on the number of pipeline steps:
//!   the per-step compute/pack path allocates nothing;
//! * the `msgpass` buffer-pool counters — payload buffers for sends are
//!   recycled rather than freshly allocated once the pipeline is warm,
//!   and every consumed receive buffer is returned to its sender.
//!
//! Multi-rank timing is real (threads), so the multi-rank assertions are
//! either exact accounting identities (fresh + recycled == sends,
//! returned == receives) or wide-margin dominance bounds on a
//! latency-throttled run, not exact step counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use msgpass::thread_backend::{run_threads, LatencyModel, PoolStats, WorldConfig};
use msgpass::transport::TransportKind;
use stencil::dist3d::{run_dist3d, run_dist3d_with, run_rank3d, Decomp3D, ExecMode};
use stencil::kernel::Relax3D;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates to the `System` allocator, which
// upholds the `GlobalAlloc` contract; the counter bump is a Relaxed
// atomic with no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller obligations forwarded verbatim to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's valid layout.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller obligations forwarded verbatim to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` with `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller obligations forwarded verbatim to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` come from a prior `System` allocation.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the tests in this binary so allocation counts aren't
/// polluted by a concurrently running sibling test.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn single_rank_decomp(nz: usize) -> Decomp3D {
    Decomp3D {
        nx: 4,
        ny: 4,
        nz,
        pi: 1,
        pj: 1,
        v: 4,
        boundary: 1.0,
    }
}

/// Allocation count of one full single-rank overlapping run; minimum of
/// three trials to shed incidental runtime noise.
fn count_single_rank_run(nz: usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let d = single_rank_decomp(nz);
        let before = ALLOCS.load(Ordering::Relaxed);
        let (grid, _) = run_dist3d(
            Relax3D::default(),
            d,
            LatencyModel::zero(),
            ExecMode::Overlapping,
        )
        .expect("valid decomp");
        let after = ALLOCS.load(Ordering::Relaxed);
        assert!(grid.data().iter().all(|x| x.is_finite()));
        best = best.min(after - before);
    }
    best
}

#[test]
fn overlap_3d_steady_state_steps_allocate_nothing() {
    let _guard = lock();
    // Warm up lazy runtime state outside the measured window.
    let _ = count_single_rank_run(8);
    // 4 steps vs 16 steps: if any allocation happened per pipeline step
    // (compute, tile bookkeeping, request slots), the longer run would
    // allocate more times. Buffer sizes differ; counts must not.
    let short = count_single_rank_run(16);
    let long = count_single_rank_run(64);
    assert_eq!(
        short, long,
        "allocation count grew with step count: {short} allocs at 4 steps vs {long} at 16"
    );
}

/// Allocation count of one full 2×2-rank overlapping run on the
/// shared-slot transport; minimum over trials sheds scheduler noise
/// (a descheduled receiver can push the sender one slot deeper into
/// the pool, costing an extra first-use buffer growth).
fn count_slot_world_run(nz: usize) -> u64 {
    let d = Decomp3D {
        nx: 4,
        ny: 4,
        nz,
        pi: 2,
        pj: 2,
        v: 4,
        boundary: 1.0,
    };
    let cfg = WorldConfig::new(LatencyModel::zero()).with_transport(TransportKind::shared_slots());
    let mut best = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCS.load(Ordering::Relaxed);
        let (grid, _, _) = run_dist3d_with(Relax3D::default(), d, &cfg, ExecMode::Overlapping)
            .expect("valid decomp");
        let after = ALLOCS.load(Ordering::Relaxed);
        assert!(grid.data().iter().all(|x| x.is_finite()));
        best = best.min(after - before);
    }
    best
}

#[test]
fn slot_transport_multi_rank_steps_allocate_nothing() {
    let _guard = lock();
    // Warm up lazy runtime state outside the measured window.
    let _ = count_slot_world_run(16);
    // 8 steps vs 64 steps across a real 2×2 world: faces pack straight
    // into the peer-visible slots and unpack straight out of them, so
    // once each link's working slots have grown their buffers the
    // per-step path — compute, pack, wire, unpack — performs zero heap
    // allocations. A leak of even one allocation per message would add
    // ≥ 224 allocations to the longer run (56 extra steps × 4 wire
    // messages per step); the allowed slack only covers warm-up breadth
    // (how many of a link's 8 slots grow a buffer depends on how far
    // the producer gets ahead, ±a few per link).
    let short = count_slot_world_run(32);
    let long = count_slot_world_run(256);
    assert!(
        long <= short + 32,
        "slot-transport steady state allocates per step: \
         {short} allocs over 8 steps vs {long} over 64"
    );
}

/// Allocation count of one full single-rank overlapping run with the
/// intra-rank worker pool engaged; minimum of three trials.
fn count_pooled_run(nz: usize) -> u64 {
    let d = single_rank_decomp(nz);
    let cfg = WorldConfig::new(LatencyModel::zero()).with_compute_workers(2);
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = ALLOCS.load(Ordering::Relaxed);
        let (grid, _, _) = run_dist3d_with(Relax3D::default(), d, &cfg, ExecMode::Overlapping)
            .expect("valid decomp");
        let after = ALLOCS.load(Ordering::Relaxed);
        assert!(grid.data().iter().all(|x| x.is_finite()));
        best = best.min(after - before);
    }
    best
}

#[test]
fn worker_pool_steady_state_steps_allocate_nothing() {
    let _guard = lock();
    // Warm up lazy runtime state outside the measured window.
    let _ = count_pooled_run(8);
    // The pool front-loads everything: row shards, halo planes and the
    // job mailbox are built once before the pipeline starts, worker
    // threads are scoped to the run, and each step is only a condvar
    // broadcast plus per-diagonal spin barriers. 4 steps vs 16 steps
    // must therefore allocate identically — any per-step or per-wave
    // allocation in the pooled walk would scale with the step count.
    let short = count_pooled_run(16);
    let long = count_pooled_run(64);
    assert_eq!(
        short, long,
        "pooled allocation count grew with step count: {short} allocs at 4 steps vs {long} at 16"
    );
}

#[test]
fn blocking_3d_send_buffers_recycle_under_load() {
    let _guard = lock();
    // 2×1 grid, 200 single-slab steps, 100 µs wire startup. The
    // sender's next acquire and the receiver's buffer return land on the
    // same wire deadline every round, so the winner is a scheduler coin
    // flip — but each lost round only grows the circulating pool, so
    // recycling must dominate by a wide margin over 200 steps. Exact
    // zero-steady-state recycling is asserted deterministically by the
    // lockstep test in `msgpass::thread_backend`.
    let d = Decomp3D {
        nx: 4,
        ny: 4,
        nz: 200,
        pi: 2,
        pj: 1,
        v: 1,
        boundary: 1.0,
    };
    let steps = d.steps();
    let latency = LatencyModel {
        startup_us: 100.0,
        per_byte_us: 0.0,
    };
    let (stats, _) = run_threads::<f32, PoolStats, _>(2, latency, move |mut comm| {
        let _ = run_rank3d(&mut comm, Relax3D::default(), d, ExecMode::Blocking);
        comm.pool_stats()
    });
    // Rank 0 sends `steps` i-faces to rank 1; rank 1 sends nothing.
    let s0 = stats[0];
    assert_eq!(
        s0.fresh_allocs + s0.recycled,
        steps as u64,
        "every send draws from the pool exactly once"
    );
    assert!(
        s0.recycled >= (steps as u64) / 2,
        "send pool barely recycled: {} of {} sends served fresh",
        s0.fresh_allocs,
        steps
    );
    // Rank 1 consumed and returned every face.
    assert_eq!(stats[1].returned, steps as u64);
}

#[test]
fn overlap_3d_pool_accounting_is_exact() {
    let _guard = lock();
    let d = Decomp3D {
        nx: 4,
        ny: 4,
        nz: 24,
        pi: 2,
        pj: 2,
        v: 4,
        boundary: 1.0,
    };
    let steps = d.steps() as u64;
    let (stats, _) = run_threads::<f32, PoolStats, _>(4, LatencyModel::zero(), move |mut comm| {
        let _ = run_rank3d(&mut comm, Relax3D::default(), d, ExecMode::Overlapping);
        comm.pool_stats()
    });
    // Ranks are laid out row-major on the 2×2 grid: rank 0 = (0,0) has
    // both down-neighbors, ranks 1 = (0,1) and 2 = (1,0) have one each,
    // rank 3 = (1,1) has none; receives mirror that.
    let sends = [2 * steps, steps, steps, 0];
    let recvs = [0, steps, steps, 2 * steps];
    for (rank, s) in stats.iter().enumerate() {
        assert_eq!(
            s.fresh_allocs + s.recycled,
            sends[rank],
            "rank {rank}: every send draws from the pool exactly once"
        );
        assert_eq!(
            s.returned, recvs[rank],
            "rank {rank}: every consumed receive buffer is returned"
        );
    }
}
