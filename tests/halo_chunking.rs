//! Property tests pinning the optimized hot paths to the preserved
//! element-wise baseline in `stencil::legacy`, bitwise.
//!
//! Two layers:
//!
//! * the row-chunked `halo::pack_rows`/`unpack_rows` against the
//!   element-wise face gather/scatter, on random shapes including
//!   partial last tiles (`v` not dividing `nz`);
//! * the full optimized executors against the legacy executors, both
//!   modes, 2-D and 3-D.

use msgpass::thread_backend::LatencyModel;
use proptest::prelude::*;
use stencil::dist2d::Decomp2D;
use stencil::dist3d::{Decomp3D, ExecMode};
use stencil::halo::{pack_rows, unpack_rows};
use stencil::kernel::{Example1, Paper3D};
use stencil::legacy;

/// Deterministic pseudo-random fill (the copies under test are
/// value-agnostic; we only need distinct recognizable values).
fn fill(n: usize, salt: u64) -> Vec<f32> {
    (0..n)
        .map(|t| {
            let x = (t as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt.wrapping_mul(0x2545_F491_4F6C_DD1D));
            ((x >> 40) as f32) * 2.0_f32.powi(-10)
        })
        .collect()
}

fn krange(d: &Decomp3D, k: usize) -> (usize, usize) {
    (k * d.v, ((k + 1) * d.v).min(d.nz))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn chunked_face_pack_matches_elementwise(
        (bx, by, nz, v) in (1usize..5, 1usize..5, 1usize..25, 1usize..8),
        salt in 0u64..10_000,
    ) {
        let d = Decomp3D { nx: bx, ny: by, nz, pi: 1, pj: 1, v, boundary: 0.0 };
        let block = fill(bx * by * nz, salt);
        for k in 0..nz.div_ceil(v) {
            let (k0, k1) = krange(&d, k);
            let len = k1 - k0;

            let oracle = legacy::face_i_elementwise(&block, &d, k);
            let mut packed = vec![0.0; by * len];
            pack_rows(&block, (bx - 1) * by * nz, nz, k0, len, &mut packed);
            prop_assert_eq!(&packed, &oracle, "i-face, step {}", k);

            let oracle = legacy::face_j_elementwise(&block, &d, k);
            let mut packed = vec![0.0; bx * len];
            pack_rows(&block, (by - 1) * nz, by * nz, k0, len, &mut packed);
            prop_assert_eq!(&packed, &oracle, "j-face, step {}", k);
        }
    }

    #[test]
    fn chunked_halo_unpack_matches_elementwise(
        (bx, by, nz, v) in (1usize..5, 1usize..5, 1usize..25, 1usize..8),
        salt in 0u64..10_000,
    ) {
        let d = Decomp3D { nx: bx, ny: by, nz, pi: 1, pj: 1, v, boundary: 0.0 };
        for k in 0..nz.div_ceil(v) {
            let (k0, k1) = krange(&d, k);
            let len = k1 - k0;

            let data = fill(by * len, salt ^ k as u64);
            let mut oracle = fill(by * nz, salt.wrapping_add(1));
            let mut chunked = oracle.clone();
            legacy::store_halo_i_elementwise(&mut oracle, &d, k, &data);
            unpack_rows(&data, &mut chunked, 0, nz, k0, len);
            prop_assert_eq!(&chunked, &oracle, "i-halo, step {}", k);

            let data = fill(bx * len, salt ^ (k as u64) << 8);
            let mut oracle = fill(bx * nz, salt.wrapping_add(2));
            let mut chunked = oracle.clone();
            legacy::store_halo_j_elementwise(&mut oracle, &d, k, &data);
            unpack_rows(&data, &mut chunked, 0, nz, k0, len);
            prop_assert_eq!(&chunked, &oracle, "j-halo, step {}", k);
        }
    }

    #[test]
    fn face_column_pack_matches_elementwise(
        (nx, by, v) in (1usize..30, 1usize..6, 1usize..8),
        salt in 0u64..10_000,
    ) {
        // The 2-D outgoing face is a strided column; the executor packs
        // it row-by-row (stride `by`, rows of length 1).
        let d = Decomp2D { nx, ny: by, ranks: 1, v, boundary: 0.0 };
        let strip = fill(nx * by, salt);
        for k in 0..nx.div_ceil(v) {
            let (i0, i1) = (k * v, ((k + 1) * v).min(nx));
            let oracle = legacy::face_2d_elementwise(&strip, &d, k);
            let mut packed = vec![0.0; i1 - i0];
            pack_rows(&strip, i0 * by + (by - 1), by, 0, 1, &mut packed);
            prop_assert_eq!(&packed, &oracle, "2-D face, step {}", k);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn optimized_3d_executor_matches_legacy_bitwise(
        (pi, pj, mi, mj) in (1usize..3, 1usize..3, 1usize..3, 1usize..3),
        (nz, v) in (1usize..16, 1usize..6),
        blocking in any::<bool>(),
    ) {
        let d = Decomp3D {
            nx: pi * mi,
            ny: pj * mj,
            nz,
            pi,
            pj,
            v, // independent of nz: partial last tiles are common here
            boundary: 1.25,
        };
        let mode = if blocking { ExecMode::Blocking } else { ExecMode::Overlapping };
        let (new, _) = stencil::dist3d::run_dist3d(Paper3D, d, LatencyModel::zero(), mode)
            .expect("valid decomp");
        let (old, _) =
            legacy::run_dist3d(Paper3D, d, LatencyModel::zero(), mode).expect("valid decomposition");
        prop_assert_eq!(new.max_abs_diff(&old), 0.0, "{:?} {:?}", mode, d);
    }

    #[test]
    fn optimized_2d_executor_matches_legacy_bitwise(
        (ranks, width, nx, v) in (1usize..4, 1usize..4, 1usize..30, 1usize..7),
        blocking in any::<bool>(),
    ) {
        let d = Decomp2D {
            nx,
            ny: ranks * width,
            ranks,
            v,
            boundary: 0.75,
        };
        let mode = if blocking { ExecMode::Blocking } else { ExecMode::Overlapping };
        let (new, _) = stencil::dist2d::run_dist2d(Example1, d, LatencyModel::zero(), mode)
            .expect("valid decomp");
        let (old, _) =
            legacy::run_dist2d(Example1, d, LatencyModel::zero(), mode).expect("valid decomposition");
        prop_assert_eq!(new.max_abs_diff(&old), 0.0, "{:?} {:?}", mode, d);
    }
}
