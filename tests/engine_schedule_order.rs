//! The engine's event order *realizes* the tiling-core schedules.
//!
//! Under the Overlap strategy, replaying each rank's recorded phase
//! sequence through a unit-cost logical clock (compute = 1 tick, a
//! posted face arrives 1 tick after its post, everything else free)
//! must start tile `(ci, cj, k)` exactly at the paper's eq. 4 time
//! `OverlapSchedule::time_of = 2·(ci + cj) + k` — the engine's
//! post-receive / post-send / compute / wait interleaving *is* the
//! overlapping schedule, not merely something that computes the same
//! values. Under Blocking, every step must be the serialized
//! *receive → compute → send* triplet of eq. 3.

use msgpass::thread_backend::{run_threads, LatencyModel};
use msgpass::topology::CartesianGrid;
use std::collections::HashMap;
use stencil::dist3d::{run_rank3d_observed, Decomp3D, ExecMode};
use stencil::engine::{Phase, PhaseLog};
use stencil::kernel::Paper3D;
use tiling_core::schedule::OverlapSchedule;
use tiling_core::space::IterationSpace;

/// Run the 3-D executor on the thread backend and collect each rank's
/// phase log (rank order).
fn phase_logs(d: Decomp3D, mode: ExecMode) -> Vec<PhaseLog> {
    run_threads::<f32, PhaseLog, _>(d.pi * d.pj, LatencyModel::zero(), |mut comm| {
        let mut log = PhaseLog::default();
        let _ = run_rank3d_observed(&mut comm, Paper3D, d, mode, &mut log);
        log
    })
    .0
}

#[test]
fn overlap_phase_order_realizes_eq4_times() {
    let d = Decomp3D {
        nx: 4,
        ny: 4,
        nz: 26,
        pi: 2,
        pj: 2,
        v: 4, // 7 steps, partial last tile
        boundary: 1.0,
    };
    let steps = d.steps();
    let logs = phase_logs(d, ExecMode::Overlapping);
    let grid = CartesianGrid::new(vec![d.pi, d.pj]);

    // Unit-cost replay. Ascending rank order is a topological order of
    // the wavefront (upstream neighbors have smaller row-major index),
    // so every send post is stamped before its receiver waits on it.
    let mut send_time: HashMap<(usize, usize, usize), i64> = HashMap::new();
    let mut start: HashMap<(usize, usize), i64> = HashMap::new();
    for (rank, log) in logs.iter().enumerate() {
        let up = [grid.neighbor(rank, &[-1, 0]), grid.neighbor(rank, &[0, -1])];
        let mut clock = 0i64;
        for ph in &log.phases {
            match *ph {
                Phase::PostSend { dir, step } => {
                    send_time.insert((rank, dir, step), clock);
                }
                Phase::WaitRecv { dir, step } => {
                    let src = up[dir].expect("engine only waits on upstream faces");
                    let arrival = send_time[&(src, dir, step)] + 1;
                    clock = clock.max(arrival);
                }
                Phase::Compute { step } => {
                    start.insert((rank, step), clock);
                    clock += 1;
                }
                _ => {}
            }
        }
    }

    // The §5 mapping: pipelined dimension i₃ of the (pi, pj, steps)
    // tiled space, so pi = [2, 2, 1] and t = 2·(ci + cj) + k.
    let sched = OverlapSchedule::with_mapping(3, 2);
    let tiled = IterationSpace::from_extents(&[d.pi as i64, d.pj as i64, steps as i64]);
    for rank in 0..d.pi * d.pj {
        let c = grid.coords_of(rank);
        for k in 0..steps {
            let expected = sched.time_of(&[c[0] as i64, c[1] as i64, k as i64], &tiled);
            assert_eq!(
                start[&(rank, k)],
                expected,
                "rank {rank} (coords {c:?}) tile {k}: engine order disagrees with eq. 4"
            );
        }
    }
}

#[test]
fn blocking_phase_order_is_serialized_triplets() {
    let d = Decomp3D {
        nx: 4,
        ny: 4,
        nz: 12,
        pi: 2,
        pj: 2,
        v: 4,
        boundary: 1.0,
    };
    let steps = d.steps();
    let logs = phase_logs(d, ExecMode::Blocking);
    let grid = CartesianGrid::new(vec![d.pi, d.pj]);
    for (rank, log) in logs.iter().enumerate() {
        let up = [grid.neighbor(rank, &[-1, 0]), grid.neighbor(rank, &[0, -1])];
        let dn = [grid.neighbor(rank, &[1, 0]), grid.neighbor(rank, &[0, 1])];
        // Eq. 3 per step: receive every face, compute, send every face —
        // nothing posted ahead, nothing deferred.
        let mut expected = Vec::new();
        for step in 0..steps {
            for (dir, src) in up.iter().enumerate() {
                if src.is_some() {
                    expected.push(Phase::Recv { dir, step });
                    expected.push(Phase::Unpack { dir, step });
                }
            }
            expected.push(Phase::Compute { step });
            for (dir, dst) in dn.iter().enumerate() {
                if dst.is_some() {
                    expected.push(Phase::Pack { dir, step });
                    expected.push(Phase::Send { dir, step });
                }
            }
        }
        assert_eq!(log.phases, expected, "rank {rank}");
    }
}
