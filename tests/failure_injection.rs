//! Failure injection: corrupt generated programs in targeted ways and
//! check the simulator *diagnoses* the damage instead of hanging or
//! silently producing a result — deadlock detection, byte-mismatch
//! detection, and protocol validation.

use cluster_sim::program::{Op, Program};
use overlap_tiling::prelude::*;

fn problem() -> ClusterProblem {
    ClusterProblem::new(
        Tiling::rectangular(&[2, 2, 8]),
        DependenceSet::paper_3d(),
        IterationSpace::from_extents(&[4, 4, 32]),
        2,
    )
    .unwrap()
}

fn machine() -> MachineParams {
    MachineParams::paper_cluster()
}

/// Rebuild a program with ops transformed by `f` (None drops the op).
fn mutate(p: &Program, mut f: impl FnMut(usize, &Op) -> Option<Op>) -> Program {
    let mut out = Program::new();
    for (i, op) in p.ops().iter().enumerate() {
        if let Some(op) = f(i, op) {
            out.push(op);
        }
    }
    out
}

#[test]
fn dropping_a_send_deadlocks_blocking_run() {
    let m = machine();
    let mut programs = problem().blocking_programs(&m);
    // Drop rank 0's first send: its dependents starve.
    let mut dropped = false;
    programs[0] = mutate(&programs[0], |_, op| {
        if !dropped && matches!(op, Op::Send { .. }) {
            dropped = true;
            None
        } else {
            Some(op.clone())
        }
    });
    assert!(dropped, "rank 0 must have sends");
    let err = simulate(SimConfig::new(m).with_trace(false), programs).unwrap_err();
    match err {
        SimError::Deadlock { blocked } => assert!(!blocked.is_empty()),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn dropping_an_isend_deadlocks_overlap_run() {
    let m = machine();
    let mut programs = problem().overlapping_programs(&m);
    // Drop one Isend *and* its matching Wait from rank 0.
    let mut dropped_req = None;
    programs[0] = mutate(&programs[0], |_, op| match op {
        Op::Isend { req, .. } if dropped_req.is_none() => {
            dropped_req = Some(*req);
            None
        }
        Op::Wait { req } if Some(*req) == dropped_req => None,
        _ => Some(op.clone()),
    });
    assert!(dropped_req.is_some());
    let err = simulate(SimConfig::new(m).with_trace(false), programs).unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "{err:?}");
}

#[test]
fn corrupting_message_size_is_detected() {
    let m = machine();
    let mut programs = problem().blocking_programs(&m);
    let mut corrupted = false;
    programs[0] = mutate(&programs[0], |_, op| match op {
        Op::Send { to, tag, bytes } if !corrupted => {
            corrupted = true;
            Some(Op::Send {
                to: *to,
                tag: *tag,
                bytes: bytes + 4,
            })
        }
        _ => Some(op.clone()),
    });
    let err = simulate(SimConfig::new(m).with_trace(false), programs).unwrap_err();
    assert!(matches!(err, SimError::ByteMismatch { .. }), "{err:?}");
}

#[test]
fn retargeting_a_send_to_invalid_rank_is_rejected_upfront() {
    let m = machine();
    let mut programs = problem().blocking_programs(&m);
    let bad = programs.len() + 7;
    programs[0] = mutate(&programs[0], |_, op| match op {
        Op::Send { tag, bytes, .. } => Some(Op::Send {
            to: bad,
            tag: *tag,
            bytes: *bytes,
        }),
        _ => Some(op.clone()),
    });
    let err = simulate(SimConfig::new(m).with_trace(false), programs).unwrap_err();
    assert!(matches!(err, SimError::BadRank { .. }), "{err:?}");
}

#[test]
fn duplicated_wait_rejected_by_validation() {
    let m = machine();
    let mut programs = problem().overlapping_programs(&m);
    // Duplicate the first Wait.
    let first_wait = programs[1]
        .ops()
        .iter()
        .find(|op| matches!(op, Op::Wait { .. }))
        .cloned()
        .expect("has waits");
    programs[1] = mutate(&programs[1], |_, op| Some(op.clone()));
    programs[1].push(first_wait);
    let err = simulate(SimConfig::new(m).with_trace(false), programs).unwrap_err();
    assert!(matches!(err, SimError::InvalidProgram { .. }), "{err:?}");
}

#[test]
fn swapped_tags_still_complete_but_change_timing() {
    // Swapping two *same-size* messages' tags on the sender side is not
    // an error the transport can see (same peer, same bytes) — the run
    // completes; the data would be wrong in a real execution, which is
    // exactly why the stencil crate verifies values bitwise.
    let m = machine();
    let base = problem().blocking_programs(&m);
    let mut programs = base.clone();
    let mut tags: Vec<u64> = Vec::new();
    programs[0] = mutate(&programs[0], |_, op| match op {
        Op::Send { to, tag, bytes } => {
            tags.push(*tag);
            // Swap tag parity pairs: 0↔2, 1↔3, 4↔6, …
            let swapped = match tag % 4 {
                0 => tag + 2,
                1 => tag + 2,
                2 => tag - 2,
                _ => tag - 2,
            };
            Some(Op::Send {
                to: *to,
                tag: swapped,
                bytes: *bytes,
            })
        }
        _ => Some(op.clone()),
    });
    let res = simulate(SimConfig::new(m).with_trace(false), programs);
    // Either completes (messages are interchangeable sizes) — the
    // dangerous silent case — or deadlocks if an unmatched tag starves
    // a receive. Both are acceptable transport behaviours; neither may
    // panic or hang the host.
    match res {
        Ok(r) => assert!(r.makespan > SimTime::ZERO),
        Err(e) => assert!(matches!(e, SimError::Deadlock { .. }), "{e:?}"),
    }
}
