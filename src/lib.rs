//! # overlap-tiling
//!
//! A from-scratch Rust reproduction of
//!
//! > G. Goumas, A. Sotiropoulos, N. Koziris,
//! > *Minimizing Completion Time for Loop Tiling with Computation and
//! > Communication Overlapping*, IPPS 2001.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`tiling_core`] — supernode (tiling) transformations, cost models,
//!   and the non-overlapping vs overlapping tile schedules (the paper's
//!   contribution);
//! * [`cluster_sim`] — a deterministic discrete-event simulator of the
//!   paper's 16-node MPI cluster (CPU / DMA / NIC lanes, MPI buffer-fill
//!   cost model);
//! * [`msgpass`] — an MPI-shaped message-passing runtime with a real
//!   multi-threaded backend and injected wire latency;
//! * [`stencil`] — the paper's workloads executed for real, with
//!   bitwise verification against sequential references.
//!
//! See `examples/` for runnable walkthroughs and the `paper` binary
//! (`cargo run --release -p bench --bin paper -- all`) for the full
//! figure-by-figure reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;

pub use cluster_sim;
pub use msgpass;
pub use stencil;
pub use tiling_core;

/// Everything commonly needed, re-exported flat.
pub mod prelude {
    pub use crate::driver::{plan, PlanError, PlanReport};
    pub use cluster_sim::prelude::*;
    pub use msgpass::prelude::*;
    pub use stencil::prelude::*;
    pub use tiling_core::prelude::*;
}
