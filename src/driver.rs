//! The compiler driver: source text → parallelization plan, end to end.
//!
//! [`plan`] chains every stage of the paper's pipeline — parse the loop
//! nest, extract dependences, apply a legalizing skew if rectangular
//! tiling would be illegal, choose the tile cross-section from the
//! processor grid (§5 layout), compute the closed-form optimal tile
//! height for the overlapping schedule (the §6 open problem), and
//! evaluate both schedules' predicted completion times — and, when the
//! layout fits the simulator's assumptions, confirms the prediction by
//! interpreting the complete MPI programs on the simulated cluster.

use cluster_sim::builders::ClusterProblem;
use cluster_sim::engine::{simulate, SimConfig};
use std::fmt;
use tiling_core::prelude::*;

/// Everything the driver decided and predicted.
#[derive(Clone, Debug)]
pub struct PlanReport {
    /// The (possibly skewed) dependence set the plan is built for.
    pub deps: DependenceSet,
    /// The legalizing transform, if one was needed.
    pub skew: Option<Unimodular>,
    /// The iteration-space bounds the plan tiles (skewed bounding box
    /// when a skew was applied).
    pub space: IterationSpace,
    /// Chosen tile sides.
    pub tile_sides: Vec<i64>,
    /// The mapping (pipeline) dimension.
    pub mapping_dim: usize,
    /// Closed-form optimal tile height along the mapping dimension.
    pub v_optimal: i64,
    /// Predicted non-overlapping completion time (s), eq. (3).
    pub nonoverlap_s: f64,
    /// Predicted overlapping completion time (s), eq. (4)/(5).
    pub overlap_s: f64,
    /// Simulated completion times (blocking, overlapping), if the
    /// layout was simulable (divisible grid, contained dependences).
    pub simulated_s: Option<(f64, f64)>,
}

impl PlanReport {
    /// Predicted improvement of overlapping over non-overlapping.
    pub fn predicted_improvement(&self) -> f64 {
        1.0 - self.overlap_s / self.nonoverlap_s
    }
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dependences:    {:?}", self.deps)?;
        if let Some(t) = &self.skew {
            writeln!(f, "legalizing skew: {:?}", t.matrix())?;
        }
        writeln!(f, "space:          {:?}", self.space)?;
        writeln!(
            f,
            "tiling:         {:?} (mapping along dim {}, V* = {})",
            self.tile_sides, self.mapping_dim, self.v_optimal
        )?;
        writeln!(f, "non-overlap:    {:.4} s (predicted)", self.nonoverlap_s)?;
        writeln!(f, "overlap:        {:.4} s (predicted)", self.overlap_s)?;
        if let Some((b, o)) = self.simulated_s {
            writeln!(f, "simulated:      {b:.4} s blocking, {o:.4} s overlapping")?;
        }
        write!(
            f,
            "predicted improvement: {:.0}%",
            self.predicted_improvement() * 100.0
        )
    }
}

/// Driver errors.
#[derive(Clone, Debug)]
pub enum PlanError {
    /// The source text did not parse.
    Parse(ParseError),
    /// Dependence extraction failed (not lexicographically positive).
    Dependences(String),
    /// The processor grid does not divide the space's cross-section.
    Layout(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Parse(e) => write!(f, "parse error: {e}"),
            PlanError::Dependences(e) => write!(f, "dependence error: {e}"),
            PlanError::Layout(e) => write!(f, "layout error: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Plan the parallel execution of a textual loop nest on `proc_grid`
/// processors (one grid entry per non-mapping dimension).
pub fn plan(
    source: &str,
    machine: &MachineParams,
    proc_grid: &[i64],
) -> Result<PlanReport, PlanError> {
    let nest = tiling_core::parse::parse_loop_nest(source).map_err(PlanError::Parse)?;
    let deps = nest
        .dependences()
        .map_err(|e| PlanError::Dependences(e.to_string()))?;
    if deps.is_empty() {
        return Err(PlanError::Dependences(
            "fully parallel nest: tiling/pipelining is unnecessary".into(),
        ));
    }

    // Legalize for rectangular tiling if needed.
    let needs_skew = deps.iter().any(|d| d.components().iter().any(|&c| c < 0));
    let (deps, skew, space) = if needs_skew {
        let t = legalizing_skew(&deps).ok_or_else(|| {
            PlanError::Dependences("dependences not lexicographically positive".into())
        })?;
        let skewed = t.apply_deps(&deps);
        let bounds = t.apply_space_bounds(nest.space());
        (skewed, Some(t), bounds)
    } else {
        (deps, None, nest.space().clone())
    };

    if proc_grid.len() + 1 != space.dims() {
        return Err(PlanError::Layout(format!(
            "processor grid has {} dims; expected {}",
            proc_grid.len(),
            space.dims() - 1
        )));
    }

    // Map along the longest dimension; the cross-section comes from the
    // processor grid (§5: one tile column per processor).
    let mapping_dim = space.longest_dimension();
    let mut cross = Vec::with_capacity(space.dims() - 1);
    let mut ci = 0;
    for d in 0..space.dims() {
        if d == mapping_dim {
            continue;
        }
        let procs = proc_grid[ci];
        ci += 1;
        if procs <= 0 {
            return Err(PlanError::Layout(
                "processor counts must be positive".into(),
            ));
        }
        // Ceil-divide (positive operands): boundary tiles may be clipped.
        cross.push((space.extent(d) + procs - 1) / procs);
    }

    // Closed-form optimal height for the overlap schedule.
    let cf = overlap_optimal_v(&space, &deps, machine, &cross, mapping_dim);
    let v = cf
        .v_star_integer()
        .clamp(1, space.extent(mapping_dim).max(1));

    let mut sides = Vec::with_capacity(space.dims());
    let mut ci = 0;
    for d in 0..space.dims() {
        if d == mapping_dim {
            sides.push(v);
        } else {
            sides.push(cross[ci]);
            ci += 1;
        }
    }
    let tiling = Tiling::rectangular(&sides);

    let no = NonOverlapSchedule::with_mapping(space.dims(), mapping_dim)
        .analyze(&tiling, &deps, &space, machine);
    let ov = OverlapSchedule::with_mapping(space.dims(), mapping_dim).analyze(
        &tiling,
        &deps,
        &space,
        machine,
        OverlapMode::Serialized,
    );

    // Simulate when the layout is exact (the builders need contained
    // dependences; clipped cross-sections are fine).
    let simulated_s = ClusterProblem::new(tiling, deps.clone(), space.clone(), mapping_dim)
        .ok()
        .map(|problem| {
            let cfg = SimConfig::new(*machine).with_trace(false);
            let b = simulate(cfg, problem.blocking_programs(machine))
                .expect("driver programs are deadlock-free");
            let o = simulate(cfg, problem.overlapping_programs(machine))
                .expect("driver programs are deadlock-free");
            (b.makespan.as_secs(), o.makespan.as_secs())
        });

    Ok(PlanReport {
        deps,
        skew,
        space,
        tile_sides: sides,
        mapping_dim,
        v_optimal: v,
        nonoverlap_s: no.total_secs(),
        overlap_s: ov.total_secs(),
        simulated_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_3D: &str = "
        FOR i = 0 TO 15 DO
          FOR j = 0 TO 15 DO
            FOR k = 0 TO 8191 DO
              A(i, j, k) = sqrt(A(i-1, j, k)) + sqrt(A(i, j-1, k)) + sqrt(A(i, j, k-1))
            ENDFOR
          ENDFOR
        ENDFOR";

    #[test]
    fn plans_paper_kernel_end_to_end() {
        let machine = MachineParams::paper_cluster();
        let report = plan(PAPER_3D, &machine, &[4, 4]).unwrap();
        assert_eq!(report.mapping_dim, 2);
        assert_eq!(&report.tile_sides[..2], &[4, 4]);
        assert!(report.skew.is_none());
        assert!(report.v_optimal > 10 && report.v_optimal < 1000);
        assert!(report.predicted_improvement() > 0.10);
        let (b, o) = report.simulated_s.expect("simulable layout");
        assert!(o < b);
        // Display renders.
        let text = report.to_string();
        assert!(text.contains("predicted improvement"));
    }

    #[test]
    fn plans_negative_dep_nest_with_skew() {
        let src = "
            FOR t = 0 TO 255 DO
              FOR x = 0 TO 1023 DO
                A(t, x) = A(t-1, x-1) + A(t-1, x) + A(t-1, x+1)
              ENDFOR
            ENDFOR";
        let machine = MachineParams::paper_cluster();
        let report = plan(src, &machine, &[8]).unwrap();
        assert!(report.skew.is_some());
        assert!(report
            .deps
            .iter()
            .all(|d| d.components().iter().all(|&c| c >= 0)));
        assert!(report.nonoverlap_s > 0.0);
    }

    #[test]
    fn rejects_bad_source() {
        let machine = MachineParams::paper_cluster();
        assert!(matches!(
            plan("FOR garbage", &machine, &[4]),
            Err(PlanError::Parse(_))
        ));
    }

    #[test]
    fn rejects_forward_dependence() {
        let machine = MachineParams::paper_cluster();
        let src = "FOR i = 0 TO 9\n A(i) = A(i+1)\nENDFOR";
        // 1-D nest needs an empty proc grid; the dependence error comes
        // first.
        assert!(matches!(
            plan(src, &machine, &[]),
            Err(PlanError::Dependences(_))
        ));
    }

    #[test]
    fn rejects_wrong_grid_arity() {
        let machine = MachineParams::paper_cluster();
        assert!(matches!(
            plan(PAPER_3D, &machine, &[4]),
            Err(PlanError::Layout(_))
        ));
    }

    #[test]
    fn rejects_parallel_nest() {
        let machine = MachineParams::paper_cluster();
        let src = "FOR i = 0 TO 9\n B(i) = C(i)\nENDFOR";
        assert!(matches!(
            plan(src, &machine, &[]),
            Err(PlanError::Dependences(_))
        ));
    }
}
